// amtfmm_loopback: end-to-end self-test for socket localities.
//
// Run under tools/amtfmm_launch (or standalone, where it degenerates to a
// world of one).  Every rank builds the identical problem from the same
// seed, runs one SPMD distributed evaluation over the socket transport,
// and then ranks != 0 ship their partial potentials and byte counters to
// rank 0 as kNetKindUser parcels (exercising drain() re-arming across
// epochs).  Rank 0 element-wise sums the partials — each target box has
// exactly one home rank, so the sum is exact, not averaged — and checks:
//
//   1. multi-process potentials == in-process multi-locality potentials
//      at 1e-12 relative (same DAG, same placement, same arithmetic);
//   2. summed per-rank wire_bytes == the in-process run's wire_bytes ==
//      the DES simulation's wire_bytes, EXACTLY (the PR 4 transport
//      identity extended across real process boundaries);
//   3. when the world is real (np > 1), the net.* counters are live.
//
// Exit 0 on success; any mismatch or transport failure is nonzero, so the
// launcher (and CI) fail loudly.

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/evaluator.hpp"
#include "geom/distributions.hpp"
#include "runtime/net/net_executor.hpp"
#include "runtime/trace_export.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"

namespace {

using namespace amtfmm;

constexpr std::size_t kGatherHeader = 5 * sizeof(std::uint64_t);

std::uint64_t load_u64(const std::byte* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void store_u64(std::byte* p, std::uint64_t v) {
  std::memcpy(p, &v, sizeof(v));
}

/// Rank-0 accumulator for the per-rank gather parcels.
struct Gather {
  std::mutex mu;
  std::vector<double> sum;  ///< element-wise sum of remote partials
  std::uint64_t wire_bytes = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t parcels = 0;
  int ranks_seen = 0;
  bool bad = false;
};

int run(int argc, char** argv) {
  Cli cli(
      "Socket-locality loopback self-test: run under amtfmm_launch, e.g.\n"
      "  amtfmm_launch --np=2 --transport=unix -- amtfmm_loopback --n=4000");
  cli.add_flag("n", std::int64_t{4000}, "source and target count");
  cli.add_flag("distribution", std::string("cube"),
               "point distribution (cube | sphere | plummer)");
  cli.add_flag("kernel", std::string("laplace"), "kernel name");
  cli.add_flag("digits", std::int64_t{3}, "accuracy digits");
  cli.add_flag("threshold", std::int64_t{60}, "refinement threshold");
  cli.add_flag("cores", std::int64_t{2}, "worker threads per rank");
  cli.add_flag("coalesce", true, "enable parcel coalescing");
  cli.add_flag("repeat", std::int64_t{1},
               "evaluations on the same rank mesh (termination re-arm test)");
  cli.add_flag("seed", std::int64_t{1}, "problem seed (identical on all ranks)");
  cli.add_flag("trace-out", std::string(""),
               "per-rank Chrome trace path prefix (empty = off)");
  cli.parse(argc, argv);

  net::NetConfig ncfg;  // standalone default: world of one
  if (auto env = net::net_config_from_env()) ncfg = *env;

  const auto n = static_cast<std::size_t>(cli.i64("n"));
  const auto seed = static_cast<std::uint64_t>(cli.i64("seed"));
  const Distribution dist = parse_distribution(cli.str("distribution"));

  // Identical inputs on every rank — the SPMD agreement the transport
  // relies on (tree, lists, DAG, and placement all derive from these).
  Rng rs(seed), rt(seed + 1), rq(seed + 2);
  const auto sources = generate_points(dist, n, rs);
  const auto targets = generate_points(dist, n, rt);
  const auto charges = generate_charges(n, rq);

  EvalConfig cfg;
  cfg.digits = static_cast<int>(cli.i64("digits"));
  cfg.threshold = static_cast<int>(cli.i64("threshold"));
  cfg.coalesce.enabled = cli.flag("coalesce");
  cfg.counters = true;
  cfg.trace = !cli.str("trace-out").empty();

  const int cores = static_cast<int>(cli.i64("cores"));
  net::NetExecutor ex(ncfg, cores, cfg.coalesce);
  const auto rank = ex.rank();
  const auto world = ex.world();

  Gather gather;
  if (rank == 0 && world > 1) {
    // Must exist before any peer's gather parcel can arrive.
    ex.register_net_handler(
        kNetKindUser, [&gather](const std::vector<std::byte>& buf) {
          std::lock_guard<std::mutex> lk(gather.mu);
          if (buf.size() < kGatherHeader) {
            gather.bad = true;
            return;
          }
          const std::uint64_t npot = load_u64(buf.data() + 32);
          if (buf.size() != kGatherHeader + npot * sizeof(double)) {
            gather.bad = true;
            return;
          }
          gather.wire_bytes += load_u64(buf.data() + 8);
          gather.bytes_sent += load_u64(buf.data() + 16);
          gather.parcels += load_u64(buf.data() + 24);
          if (gather.sum.empty()) gather.sum.assign(npot, 0.0);
          if (gather.sum.size() != npot) {
            gather.bad = true;
            return;
          }
          for (std::uint64_t i = 0; i < npot; ++i) {
            double v;
            std::memcpy(&v, buf.data() + kGatherHeader + i * sizeof(double),
                        sizeof(v));
            gather.sum[i] += v;
          }
          ++gather.ranks_seen;
        });
  }

  Evaluator eval(make_kernel(cli.str("kernel")), cfg);
  EvalResult res = eval.evaluate_distributed(ex, sources, charges, targets);

  // Repeat evaluations on the same connections: every round re-runs the
  // termination protocol from a re-armed state, and the per-epoch stats
  // must be identical round to round — a stale probe or a cumulative
  // (sent, recvd) cut leaking across epochs shows up here as a hang, a
  // wire-byte drift, or a broken transport identity.
  const auto repeat = static_cast<int>(cli.i64("repeat"));
  for (int rep = 1; rep < repeat; ++rep) {
    EvalResult again = eval.evaluate_distributed(ex, sources, charges, targets);
    if (again.wire_bytes != res.wire_bytes ||
        again.wire_bytes != again.bytes_sent) {
      std::fprintf(stderr,
                   "LOOPBACK FAIL: rank %u repeat %d wire_bytes %" PRIu64
                   " (round 1: %" PRIu64 ") bytes_sent %" PRIu64 "\n",
                   rank, rep + 1, again.wire_bytes, res.wire_bytes,
                   again.bytes_sent);
      return 1;
    }
    double rep_rel = 0.0;
    for (std::size_t i = 0; i < again.potentials.size(); ++i) {
      const double rel = std::abs(again.potentials[i] - res.potentials[i]) /
                         std::max(1.0, std::abs(res.potentials[i]));
      rep_rel = std::max(rep_rel, rel);
    }
    if (rep_rel > 1e-12) {
      std::fprintf(stderr,
                   "LOOPBACK FAIL: rank %u repeat %d potentials drift "
                   "(max rel err %.3e > 1e-12)\n",
                   rank, rep + 1, rep_rel);
      return 1;
    }
    res = std::move(again);
  }

  if (!cli.str("trace-out").empty()) {
    ChromeTraceOptions topt;
    topt.cores_per_locality = cores;
    topt.makespan = res.makespan;
    topt.dag_edges = res.dag_edges;
    topt.counters = &res.counters;
    // Per-rank identity + clock anchor: trace_report --merge shifts this
    // file onto rank 0's timeline using exactly these fields.
    topt.rank = rank;
    topt.world = world;
    topt.clock = ex.trace_clock();
    trace_export_chrome(cli.str("trace-out") + "." + std::to_string(rank),
                        res.trace, res.comm_trace, res.instants, topt);
  }

  if (world > 1) {
    if (rank != 0) {
      const std::uint64_t npot = res.potentials.size();
      auto buf = std::make_shared<std::vector<std::byte>>(
          kGatherHeader + npot * sizeof(double));
      store_u64(buf->data(), rank);
      store_u64(buf->data() + 8, res.wire_bytes);
      store_u64(buf->data() + 16, res.bytes_sent);
      store_u64(buf->data() + 24, res.parcels_sent);
      store_u64(buf->data() + 32, npot);
      std::memcpy(buf->data() + kGatherHeader, res.potentials.data(),
                  npot * sizeof(double));
      Task t;
      t.locality = 0;
      t.net_kind = kNetKindUser;
      t.net_payload = buf;
      t.fn = [] {};
      ex.send(rank, 0, buf->size(), t);
    }
    // Second drain epoch: collects the gather on rank 0, and every rank
    // participates in the termination protocol again.
    ex.drain();
  }

  if (rank != 0) return 0;  // followers: verification happens on rank 0

  if (world > 1) {
    std::lock_guard<std::mutex> lk(gather.mu);
    if (gather.bad || gather.ranks_seen != static_cast<int>(world) - 1) {
      std::fprintf(stderr,
                   "LOOPBACK FAIL: gather saw %d of %u ranks (bad=%d)\n",
                   gather.ranks_seen, world - 1, gather.bad ? 1 : 0);
      return 1;
    }
  }

  // Global answer: rank 0's partials plus the element-wise remote sums
  // (disjoint supports — each target box has exactly one home rank).
  std::vector<double> global = res.potentials;
  if (!gather.sum.empty()) {
    for (std::size_t i = 0; i < global.size(); ++i) global[i] += gather.sum[i];
  }
  const std::uint64_t total_wire = res.wire_bytes + gather.wire_bytes;
  const std::uint64_t total_sent = res.bytes_sent + gather.bytes_sent;

  // In-process reference: the same problem on the threaded executor with
  // one locality per rank.  Same DAG, same placement, same arithmetic —
  // the answers must agree to rounding noise and the bytes exactly.
  EvalConfig rcfg = cfg;
  rcfg.trace = false;
  rcfg.counters = false;
  rcfg.localities = static_cast<int>(world);
  rcfg.cores_per_locality = cores;
  Evaluator ref_eval(make_kernel(cli.str("kernel")), rcfg);
  const EvalResult ref = ref_eval.evaluate(sources, charges, targets);

  SimConfig scfg;
  scfg.localities = static_cast<int>(world);
  scfg.cores_per_locality = cores;
  scfg.coalesce = cfg.coalesce;
  const SimResult sim = ref_eval.simulate(sources, targets, scfg);

  double max_rel = 0.0;
  for (std::size_t i = 0; i < global.size(); ++i) {
    const double rel = std::abs(global[i] - ref.potentials[i]) /
                       std::max(1.0, std::abs(ref.potentials[i]));
    max_rel = std::max(max_rel, rel);
  }
  bool ok = true;
  if (max_rel > 1e-12) {
    std::fprintf(stderr,
                 "LOOPBACK FAIL: potentials diverge from in-process run "
                 "(max rel err %.3e > 1e-12)\n",
                 max_rel);
    ok = false;
  }
  if (total_wire != total_sent) {
    std::fprintf(stderr,
                 "LOOPBACK FAIL: wire_bytes %" PRIu64 " != bytes_sent %" PRIu64
                 "\n",
                 total_wire, total_sent);
    ok = false;
  }
  if (total_wire != ref.wire_bytes || total_wire != sim.wire_bytes) {
    std::fprintf(stderr,
                 "LOOPBACK FAIL: wire bytes disagree: multi-process %" PRIu64
                 ", in-process %" PRIu64 ", sim %" PRIu64 "\n",
                 total_wire, ref.wire_bytes, sim.wire_bytes);
    ok = false;
  }
  if (world > 1) {
    const std::uint64_t net_msgs = res.counters.value("net.msgs_sent");
    const std::uint64_t net_iters = res.counters.value("net.progress_iters");
    if (net_msgs == 0 || net_iters == 0) {
      std::fprintf(stderr,
                   "LOOPBACK FAIL: net counters dead (msgs_sent=%" PRIu64
                   " progress_iters=%" PRIu64 ")\n",
                   net_msgs, net_iters);
      ok = false;
    }
  }
  if (!ok) return 1;

  std::printf("LOOPBACK OK np=%u n=%zu wire_bytes=%" PRIu64
              " parcels=%" PRIu64 " max_rel=%.3e makespan=%.3fs\n",
              world, n, total_wire, res.parcels_sent + gather.parcels,
              max_rel, res.makespan);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "amtfmm_loopback: %s\n", e.what());
    return 1;
  }
}
