// rtcheck: schedule-exploring model checker for the runtime's concurrent
// structures.  Runs the scenario suites in src/rtcheck/scenarios.cpp under
// the controlled scheduler (DFS with a preemption bound, randomized PCT, or
// deterministic replay of a recorded schedule), with the happens-before
// race checker and protocol invariants layered on top.
//
// Typical uses:
//   rtcheck --list
//   rtcheck --suite deque --mode dfs --preempt 2
//   rtcheck --scenario lco.trigger_once --mutation lco-set-input-no-lock
//   rtcheck --scenario deque.steal_vs_pop --mode replay --replay 1,1,0,...
//   rtcheck --mode pct --seed 7 --executions 512 --time-budget 600
//
// Every failure report prints the exact flags that replay it.  Exit status
// is 0 when every scenario had its expected outcome (clean scenarios pass,
// expect-fail self-checks and mutation runs are flagged), 1 otherwise.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "rtcheck/harness.hpp"
#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/json.hpp"

namespace {

using amtfmm::rtcheck::all_scenarios;
using amtfmm::rtcheck::format_schedule;
using amtfmm::rtcheck::Harness;
using amtfmm::Mutation;
using amtfmm::rtcheck::mutation_name;
using amtfmm::rtcheck::mutation_scenario;
using amtfmm::rtcheck::RtOptions;
using amtfmm::rtcheck::RtReport;
using amtfmm::rtcheck::Scenario;

double wall_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void print_report(const Scenario& sc, const RtReport& rep, bool expected) {
  std::printf("%-32s %-6s %8llu schedules%s%s: %s\n", rep.scenario.c_str(),
              rep.mode.c_str(),
              static_cast<unsigned long long>(rep.executions),
              rep.complete ? " (complete)" : "",
              rep.mutation != Mutation::kNone ? " [mutated]" : "",
              rep.failed ? (sc.expect_fail ? "flagged (as expected)"
                                           : "FAILED")
                         : (sc.expect_fail ? "NOT FLAGGED" : "pass"));
  if (rep.failed) {
    std::printf("    %s\n", rep.message.c_str());
    std::printf("    replay: rtcheck --scenario %s --mode replay --replay %s",
                rep.scenario.c_str(), format_schedule(rep.schedule).c_str());
    if (rep.mutation != Mutation::kNone) {
      std::printf(" --mutation %s", mutation_name(rep.mutation));
    }
    std::printf("\n");
    if (rep.mode == "pct") {
      std::printf(
          "    or:     rtcheck --scenario %s --mode pct --seed %llu "
          "--executions 1\n",
          rep.scenario.c_str(), static_cast<unsigned long long>(rep.seed));
    }
  }
  if (!expected) {
    std::printf("    UNEXPECTED OUTCOME (expected %s)\n",
                sc.expect_fail ? "a flagged failure" : "a clean pass");
  }
}

}  // namespace

int main(int argc, char** argv) {
  amtfmm::Cli cli(
      "Schedule-exploring model checker + happens-before race verifier for "
      "the runtime's concurrent structures");
  cli.add_flag("list", false, "list scenarios and exit");
  cli.add_flag("scenario", std::string(),
               "run one scenario by exact name (see --list)");
  cli.add_flag("suite", std::string(),
               "run every scenario whose name starts with this prefix "
               "(empty with no --scenario: all scenarios)");
  cli.add_flag("mode", std::string("dfs"), "dfs | pct | replay");
  cli.add_flag("preempt", std::int64_t{2}, "dfs: preemption bound");
  cli.add_flag("max-executions", std::int64_t{1} << 20,
               "dfs: schedule budget before giving up on exhaustiveness");
  cli.add_flag("max-steps", std::int64_t{1} << 16,
               "per-execution schedule-point budget (livelock guard)");
  cli.add_flag("seed", std::int64_t{1}, "pct: base seed");
  cli.add_flag("executions", std::int64_t{256}, "pct: executions per scenario");
  cli.add_flag("depth", std::int64_t{3}, "pct: bug depth d (d-1 priority "
               "change points per execution)");
  cli.add_flag("mutation", std::string(),
               "enable a seeded mutation (fault injection); the run is then "
               "expected to be flagged");
  cli.add_flag("replay", std::string(),
               "replay: comma-separated pick sequence from a failure report");
  cli.add_flag("trace-out", std::string(),
               "write the per-scenario reports (with failure traces) as JSON");
  cli.add_flag("time-budget", 0.0,
               "pct: keep re-running with advancing seeds for this many "
               "seconds (nightly soak); 0 = one pass");
  try {
    cli.parse(argc, argv);

    if (cli.flag("list")) {
      for (const Scenario& sc : all_scenarios()) {
        std::printf("%-32s%s%s %s\n", sc.name.c_str(),
                    sc.dfs_feasible ? "" : " [pct-only]",
                    sc.expect_fail ? " [self-check]" : "", sc.summary.c_str());
      }
      return 0;
    }

    RtOptions opt;
    const std::string mode = cli.str("mode");
    if (mode == "dfs") {
      opt.mode = RtOptions::Mode::kDfs;
    } else if (mode == "pct") {
      opt.mode = RtOptions::Mode::kPct;
    } else if (mode == "replay") {
      opt.mode = RtOptions::Mode::kReplay;
    } else {
      throw amtfmm::config_error("unknown --mode: " + mode);
    }
    opt.preemption_bound = static_cast<int>(cli.i64("preempt"));
    opt.max_executions = static_cast<std::uint64_t>(cli.i64("max-executions"));
    opt.max_steps = static_cast<std::uint64_t>(cli.i64("max-steps"));
    opt.seed = static_cast<std::uint64_t>(cli.i64("seed"));
    opt.pct_executions = static_cast<std::uint64_t>(cli.i64("executions"));
    opt.pct_depth = static_cast<int>(cli.i64("depth"));
    opt.mutation = amtfmm::rtcheck::mutation_from_name(cli.str("mutation"));
    opt.replay_schedule = amtfmm::rtcheck::parse_schedule(cli.str("replay"));

    // Which scenarios: an exact --scenario, a --suite prefix, or (with a
    // mutation) its canonical detecting scenario, else everything feasible
    // under the chosen mode.
    std::vector<const Scenario*> picked;
    const std::string one = cli.str("scenario");
    std::string prefix = cli.str("suite");
    if (!one.empty()) {
      const Scenario* sc = amtfmm::rtcheck::find_scenario(one);
      if (sc == nullptr) {
        throw amtfmm::config_error("unknown scenario: " + one +
                                   " (see --list)");
      }
      picked.push_back(sc);
    } else {
      if (prefix.empty() && opt.mutation != Mutation::kNone) {
        prefix = mutation_scenario(opt.mutation);
      }
      for (const Scenario& sc : all_scenarios()) {
        if (sc.name.compare(0, prefix.size(), prefix) != 0) continue;
        if (opt.mode == RtOptions::Mode::kDfs && !sc.dfs_feasible) continue;
        picked.push_back(&sc);
      }
      if (picked.empty()) {
        throw amtfmm::config_error("no scenario matches --suite " + prefix);
      }
    }

    // A mutated run must be flagged by at least its canonical scenario;
    // unrelated scenarios in the same sweep may legitimately stay green.
    const std::string canonical = mutation_scenario(opt.mutation);

    const double budget = cli.f64("time-budget");
    const double t0 = wall_now();
    bool ok = true;
    bool canonical_flagged = false;
    std::vector<RtReport> reports;
    std::uint64_t seed = opt.seed;
    std::uint64_t rounds = 0;
    do {
      if (rounds > 0) {
        std::printf("-- soak round %llu, seed %llu\n",
                    static_cast<unsigned long long>(rounds),
                    static_cast<unsigned long long>(seed));
      }
      for (const Scenario* sc : picked) {
        RtOptions o = opt;
        o.seed = seed;
        Harness h(*sc, o);
        const RtReport rep = h.run();
        const bool is_canonical = sc->name == canonical;
        if (rep.failed && is_canonical) canonical_flagged = true;
        // Expected outcome: expect-fail self-checks must be flagged; the
        // mutation's canonical scenario is judged after the loop (PCT may
        // need several rounds); everything else must pass clean.
        bool expected;
        if (sc->expect_fail) {
          expected = rep.failed;
        } else if (opt.mutation != Mutation::kNone && is_canonical) {
          expected = true;
        } else {
          expected = !rep.failed && !rep.diverged;
        }
        ok = ok && expected;
        print_report(*sc, rep, expected);
        reports.push_back(rep);
      }
      ++rounds;
      seed = opt.seed + rounds * opt.pct_executions;
    } while (opt.mode == RtOptions::Mode::kPct && budget > 0.0 &&
             wall_now() - t0 < budget && !(ok && opt.mutation != Mutation::kNone &&
                                           canonical_flagged));

    if (opt.mutation != Mutation::kNone && !canonical.empty()) {
      bool ran_canonical = false;
      for (const Scenario* sc : picked) {
        ran_canonical = ran_canonical || sc->name == canonical;
      }
      if (ran_canonical && !canonical_flagged) {
        std::printf("mutation %s NOT detected by %s\n",
                    mutation_name(opt.mutation), canonical.c_str());
        ok = false;
      }
    }

    const std::string out = cli.str("trace-out");
    if (!out.empty()) {
      amtfmm::JsonWriter w;
      w.begin_object();
      w.kv("mode", mode);
      w.kv("mutation", mutation_name(opt.mutation));
      w.kv("base_seed", static_cast<std::uint64_t>(cli.i64("seed")));
      w.kv("ok", ok);
      w.key("reports");
      w.begin_array();
      for (const RtReport& r : reports) r.append_json(w);
      w.end_array();
      w.end_object();
      if (!w.write_file(out)) {
        std::fprintf(stderr, "rtcheck: cannot write %s\n", out.c_str());
        return 1;
      }
    }
    return ok ? 0 : 1;
  } catch (const amtfmm::config_error& e) {
    std::fprintf(stderr, "rtcheck: %s\n", e.what());
    return 2;
  }
}
