// Post-mortem analyzer for Chrome traces written by trace_export_chrome()
// (bench --trace-out=FILE).  Prints a compact JSON report to stdout —
// critical-path length, per-class time totals, per-worker utilization, and
// steal/coalescing counters — and exits nonzero when the trace fails its
// structural or consistency checks, so CI can gate on it directly.
//
// Usage: trace_report TRACE.json [--out REPORT.json]

#include <cstdio>
#include <cstring>
#include <string>

#include "runtime/trace_report.hpp"

int main(int argc, char** argv) {
  std::string in;
  std::string out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out = argv[i] + 6;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: trace_report TRACE.json [--out REPORT.json]\n");
      return 0;
    } else if (in.empty()) {
      in = argv[i];
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", argv[i]);
      return 2;
    }
  }
  if (in.empty()) {
    std::fprintf(stderr, "usage: trace_report TRACE.json [--out REPORT.json]\n");
    return 2;
  }

  const amtfmm::TraceReport report = amtfmm::analyze_trace_file(in);
  const std::string json = report_json(report);
  std::printf("%s\n", json.c_str());
  if (!out.empty()) {
    std::FILE* f = std::fopen(out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", out.c_str());
      return 2;
    }
    std::fputs(json.c_str(), f);
    std::fputc('\n', f);
    std::fclose(f);
  }
  if (!report.valid) {
    std::fprintf(stderr, "trace_report: INVALID trace: %s\n",
                 report.error.c_str());
    return 1;
  }
  return 0;
}
