// Post-mortem analyzer for Chrome traces written by trace_export_chrome()
// (bench --trace-out=FILE).  Prints a compact JSON report to stdout —
// critical-path length, per-class time totals, per-worker utilization, and
// steal/coalescing counters — and exits nonzero when the trace fails its
// structural or consistency checks, so CI can gate on it directly.
//
// With --merge, combines N per-rank traces from one distributed run onto
// rank 0's clock-corrected timeline (see trace_merge.hpp): writes the
// merged Chrome trace, re-derives cross-rank parcel flows from matched
// send/recv instants, and reports the cross-rank weighted critical path
// including NIC/net spans.  Exits nonzero on structural failure or any
// negative-duration cross-rank flow (clock correction unsound).
//
// Usage: trace_report TRACE.json [--out REPORT.json]
//        trace_report --merge MERGED.json RANK0.json RANK1.json ...
//                     [--out REPORT.json]

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "runtime/trace_merge.hpp"
#include "runtime/trace_report.hpp"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: trace_report TRACE.json [--out REPORT.json]\n"
      "       trace_report --merge MERGED.json RANK0.json RANK1.json ...\n"
      "                    [--out REPORT.json]\n");
  return 2;
}

int write_out(const std::string& json, const std::string& out) {
  std::printf("%s\n", json.c_str());
  if (out.empty()) return 0;
  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 2;
  }
  std::fputs(json.c_str(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> inputs;
  std::string out;
  std::string merge_out;
  bool merge = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out = argv[i] + 6;
    } else if (std::strcmp(argv[i], "--merge") == 0 && i + 1 < argc) {
      merge = true;
      merge_out = argv[++i];
    } else if (std::strncmp(argv[i], "--merge=", 8) == 0) {
      merge = true;
      merge_out = argv[i] + 8;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      usage();
      return 0;
    } else {
      inputs.emplace_back(argv[i]);
    }
  }

  if (merge) {
    if (inputs.empty()) return usage();
    const amtfmm::TraceMergeReport report =
        amtfmm::trace_merge(inputs, merge_out);
    const int rc = write_out(merge_report_json(report), out);
    if (rc != 0) return rc;
    if (!report.valid) {
      std::fprintf(stderr, "trace_report: INVALID merge: %s\n",
                   report.error.c_str());
      return 1;
    }
    if (report.negative_flows != 0) {
      std::fprintf(stderr,
                   "trace_report: %llu negative-duration cross-rank flows "
                   "(clock correction unsound)\n",
                   static_cast<unsigned long long>(report.negative_flows));
      return 1;
    }
    return 0;
  }

  if (inputs.size() != 1) return usage();
  const amtfmm::TraceReport report = amtfmm::analyze_trace_file(inputs[0]);
  const int rc = write_out(report_json(report), out);
  if (rc != 0) return rc;
  if (!report.valid) {
    std::fprintf(stderr, "trace_report: INVALID trace: %s\n",
                 report.error.c_str());
    return 1;
  }
  return 0;
}
