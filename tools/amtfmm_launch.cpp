// amtfmm_launch: spawns an N-process socket-locality world on one host.
//
//   amtfmm_launch --np=4 --transport=unix -- ./amtfmm_loopback --n=4000
//
// Every rank runs the identical command line (SPMD); the launcher wires
// ranks together purely through the environment (AMTFMM_NET_RANK / SIZE /
// TRANSPORT / DIR [/ WINDOW]) plus a shared bootstrap directory where the
// transport publishes its Unix socket paths or TCP ports.  The launcher
// supervises the world: any rank exiting nonzero (or a signal) tears the
// rest down, and a wall-clock timeout kills a hung world instead of
// letting CI wait forever (exit 124, the `timeout(1)` convention).
//
// Failure triage: each rank's stderr is captured to DIR/rank.<r>.stderr.
// When the world fails, the launcher prints per-rank exit status (decoding
// signals by name), the stderr tail of every failed rank, and the paths of
// any flight-recorder dumps found in the bootstrap directory — and keeps
// the directory instead of cleaning it up, so the artifacts survive.

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <filesystem>
#include <string>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "support/cli.hpp"
#include "support/error.hpp"
#include "support/timer.hpp"

namespace {

using amtfmm::Cli;

struct Child {
  pid_t pid = -1;
  bool exited = false;
  bool torn_down = false;  ///< reaped by the launcher's own teardown
  int code = 0;
  int sig = 0;  ///< terminating signal, 0 when it exited normally
};

void kill_world(std::vector<Child>& children) {
  for (const Child& c : children) {
    if (!c.exited && c.pid > 0) ::kill(c.pid, SIGTERM);
  }
  // Grace period, then escalate; a wedged progress thread ignores SIGTERM
  // only if the process is truly stuck.
  const amtfmm::Timer t;
  for (;;) {
    bool any_live = false;
    for (Child& c : children) {
      if (c.exited) continue;
      int status = 0;
      pid_t got = ::waitpid(c.pid, &status, WNOHANG);
      if (got == c.pid) {
        c.exited = true;
        c.torn_down = true;
      } else {
        any_live = true;
      }
    }
    if (!any_live) return;
    if (t.seconds() > 2.0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  for (Child& c : children) {
    if (!c.exited && c.pid > 0) {
      ::kill(c.pid, SIGKILL);
      ::waitpid(c.pid, nullptr, 0);
      c.exited = true;
      c.torn_down = true;
    }
  }
}

std::string stderr_path(const std::string& dir, std::size_t rank) {
  return dir + "/rank." + std::to_string(rank) + ".stderr";
}

/// Last ~2 KiB of a rank's captured stderr, printed line-aligned.
void print_stderr_tail(const std::string& path, std::size_t rank) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  constexpr long kTail = 2048;
  const long from = size > kTail ? size - kTail : 0;
  std::fseek(f, from, SEEK_SET);
  std::string buf(static_cast<std::size_t>(size - from), '\0');
  const std::size_t got = std::fread(buf.data(), 1, buf.size(), f);
  std::fclose(f);
  buf.resize(got);
  if (buf.empty()) return;
  if (from > 0) {
    // Drop the first partial line of the tail window.
    const std::size_t nl = buf.find('\n');
    if (nl != std::string::npos) buf.erase(0, nl + 1);
  }
  std::fprintf(stderr, "amtfmm_launch: ---- rank %zu stderr tail ----\n",
               rank);
  std::fputs(buf.c_str(), stderr);
  if (buf.back() != '\n') std::fputc('\n', stderr);
}

/// Flight-recorder dumps a failing world left in the bootstrap directory
/// (ranks dump there by default under the launcher; see amtfmm_serve).
std::vector<std::string> find_flight_dumps(const std::string& dir) {
  std::vector<std::string> dumps;
  std::error_code ec;
  for (const auto& e : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = e.path().filename().string();
    if (name.rfind("flight.", 0) == 0 &&
        name.size() > 5 && name.compare(name.size() - 5, 5, ".json") == 0) {
      dumps.push_back(e.path().string());
    }
  }
  std::sort(dumps.begin(), dumps.end());
  return dumps;
}

int run(int argc, char** argv) {
  // Split at "--": flags for the launcher before it, the rank command
  // after it (Cli has no positional-argument support by design).
  int split = argc;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--") == 0) {
      split = i;
      break;
    }
  }

  Cli cli(
      "Launch an N-process socket-locality world:\n"
      "  amtfmm_launch --np=2 --transport=unix -- <command> [args...]");
  cli.add_flag("np", std::int64_t{2}, "number of ranks (processes)");
  cli.add_flag("transport", std::string("unix"), "transport: unix | tcp");
  cli.add_flag("dir", std::string(""),
               "bootstrap directory (default: fresh mkdtemp, removed after)");
  cli.add_flag("timeout", 120.0, "wall-clock seconds before killing the world");
  cli.add_flag("window", std::int64_t{0},
               "injection window bytes (0 = transport default)");
  cli.parse(split, argv);

  const int np = static_cast<int>(cli.i64("np"));
  const std::string transport = cli.str("transport");
  const double timeout = cli.f64("timeout");
  if (np < 1 || np > 64) {
    std::fprintf(stderr, "amtfmm_launch: --np must be in [1, 64]\n");
    return 2;
  }
  if (transport != "unix" && transport != "tcp") {
    std::fprintf(stderr, "amtfmm_launch: --transport must be unix or tcp\n");
    return 2;
  }
  if (split + 1 >= argc) {
    std::fprintf(stderr,
                 "amtfmm_launch: missing command (usage: amtfmm_launch "
                 "[flags] -- <command> [args...])\n");
    return 2;
  }

  std::string dir = cli.str("dir");
  bool own_dir = false;
  if (dir.empty()) {
    char tmpl[] = "/tmp/amtfmm_net.XXXXXX";
    if (::mkdtemp(tmpl) == nullptr) {
      std::perror("amtfmm_launch: mkdtemp");
      return 1;
    }
    dir = tmpl;
    own_dir = true;
  }

  std::vector<char*> child_argv(argv + split + 1, argv + argc);
  child_argv.push_back(nullptr);

  std::vector<Child> children(static_cast<std::size_t>(np));
  for (int r = 0; r < np; ++r) {
    pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("amtfmm_launch: fork");
      kill_world(children);
      return 1;
    }
    if (pid == 0) {
      ::setenv("AMTFMM_NET_RANK", std::to_string(r).c_str(), 1);
      ::setenv("AMTFMM_NET_SIZE", std::to_string(np).c_str(), 1);
      ::setenv("AMTFMM_NET_TRANSPORT", transport.c_str(), 1);
      ::setenv("AMTFMM_NET_DIR", dir.c_str(), 1);
      if (cli.i64("window") > 0) {
        ::setenv("AMTFMM_NET_WINDOW",
                 std::to_string(cli.i64("window")).c_str(), 1);
      }
      // Capture stderr per rank for post-mortem triage; the interleaved
      // live stream was unreadable past two ranks anyway.
      const std::string errf =
          stderr_path(dir, static_cast<std::size_t>(r));
      const int fd = ::open(errf.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
      if (fd >= 0) {
        ::dup2(fd, 2);
        ::close(fd);
      }
      ::execvp(child_argv[0], child_argv.data());
      std::perror("amtfmm_launch: execvp");
      _exit(127);
    }
    children[static_cast<std::size_t>(r)].pid = pid;
  }

  const amtfmm::Timer wall;
  int world_rc = 0;
  int live = np;
  bool timed_out = false;
  while (live > 0) {
    int status = 0;
    pid_t got = ::waitpid(-1, &status, WNOHANG);
    if (got > 0) {
      for (std::size_t r = 0; r < children.size(); ++r) {
        if (children[r].pid != got || children[r].exited) continue;
        children[r].exited = true;
        --live;
        int code = 0;
        if (WIFEXITED(status)) {
          code = WEXITSTATUS(status);
        } else if (WIFSIGNALED(status)) {
          children[r].sig = WTERMSIG(status);
          code = 128 + WTERMSIG(status);
        }
        children[r].code = code;
        if (code != 0) {
          if (children[r].sig != 0) {
            std::fprintf(stderr,
                         "amtfmm_launch: rank %zu killed by signal %d (%s)\n",
                         r, children[r].sig, strsignal(children[r].sig));
          } else {
            std::fprintf(stderr, "amtfmm_launch: rank %zu exited with %d\n",
                         r, code);
          }
          if (world_rc == 0) world_rc = code;
        }
      }
      // A failed rank strands its peers in the termination protocol;
      // tear the world down rather than waiting out the timeout.
      if (world_rc != 0) break;
      continue;
    }
    if (wall.seconds() > timeout) {
      std::fprintf(stderr,
                   "amtfmm_launch: timeout after %.0f s, killing world\n",
                   timeout);
      timed_out = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  kill_world(children);
  const bool failed = timed_out || world_rc != 0;
  if (failed) {
    // Triage: per-rank exit summary, failed ranks' stderr tails, and any
    // flight-recorder dumps the dying world left behind.
    for (std::size_t r = 0; r < children.size(); ++r) {
      const Child& c = children[r];
      if (c.torn_down) {
        std::fprintf(stderr, "amtfmm_launch: rank %zu: torn down by "
                     "launcher\n", r);
      } else if (c.sig != 0) {
        std::fprintf(stderr, "amtfmm_launch: rank %zu: signal %d (%s)\n", r,
                     c.sig, strsignal(c.sig));
      } else {
        std::fprintf(stderr, "amtfmm_launch: rank %zu: exit %d\n", r, c.code);
      }
    }
    for (std::size_t r = 0; r < children.size(); ++r) {
      if (children[r].code != 0 || timed_out) {
        print_stderr_tail(stderr_path(dir, r), r);
      }
    }
    for (const std::string& dump : find_flight_dumps(dir)) {
      std::fprintf(stderr, "amtfmm_launch: flight dump: %s\n", dump.c_str());
    }
    if (own_dir) {
      std::fprintf(stderr, "amtfmm_launch: artifacts kept in %s\n",
                   dir.c_str());
    }
  } else if (own_dir) {
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }
  if (timed_out) return 124;
  return world_rc;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "amtfmm_launch: %s\n", e.what());
    return 2;
  }
}
