// Incremental Tree::update: structure-preserving point moves, balanced
// erase/insert, the empty fast path, and exact parity with a full rebuild
// of the patched ensemble — plus the guaranteed rebuild fallbacks.

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <set>
#include <vector>

#include "geom/distributions.hpp"
#include "tree/tree.hpp"

namespace amtfmm {
namespace {

constexpr int kThreshold = 40;
constexpr int kLocalities = 4;

struct Ensemble {
  std::vector<Vec3> pts;
  Cube domain;
  Tree tree;
};

Ensemble make_ensemble(std::uint64_t seed, std::size_t n = 4000) {
  Rng rng(seed);
  Ensemble e{generate_points(Distribution::kCube, n, rng), {}, {}};
  e.domain = bounding_cube(e.pts, {});
  e.tree = Tree::build(e.pts, e.domain, kThreshold, kLocalities);
  return e;
}

/// Leaf box containing sorted point i.
BoxIndex leaf_of(const Tree& t, std::uint32_t sorted_i) {
  BoxIndex b = t.root();
  for (;;) {
    const TreeBox& box = t.box(b);
    if (box.is_leaf()) return b;
    BoxIndex next = kNoBox;
    for (const BoxIndex c : box.child) {
      if (c == kNoBox) continue;
      const TreeBox& cb = t.box(c);
      if (sorted_i >= cb.first && sorted_i < cb.first + cb.count) next = c;
    }
    if (next == kNoBox) return b;
    b = next;
  }
}

/// A jittered position strictly inside `cube` (same leaf by construction).
Vec3 inside(const Cube& cube, Rng& rng) {
  const Vec3 c = cube.center();
  const double h = 0.4 * cube.size;
  return {c.x + (rng.uniform() - 0.5) * h, c.y + (rng.uniform() - 0.5) * h,
          c.z + (rng.uniform() - 0.5) * h};
}

/// Applies the documented renumbering to an original-order point array.
std::vector<Vec3> patch(std::vector<Vec3> pts,
                        const std::vector<PointMove>& moves,
                        const std::vector<std::uint32_t>& erased,
                        const std::vector<Vec3>& inserted) {
  for (const PointMove& m : moves) pts[m.index] = m.position;
  for (std::size_t i = erased.size(); i-- > 0;) {
    pts.erase(pts.begin() + erased[i]);
  }
  pts.insert(pts.end(), inserted.begin(), inserted.end());
  return pts;
}

/// The updated tree must be indistinguishable from a fresh build of the
/// patched ensemble over the same fixed domain.
void expect_matches_fresh_build(const Tree& got,
                                const std::vector<Vec3>& patched,
                                const Cube& domain) {
  const Tree want = Tree::build(patched, domain, kThreshold, kLocalities);
  ASSERT_EQ(got.boxes().size(), want.boxes().size());
  for (BoxIndex b = 0; b < want.boxes().size(); ++b) {
    const TreeBox &g = got.box(b), &w = want.box(b);
    EXPECT_EQ(g.parent, w.parent) << "box " << b;
    EXPECT_EQ(g.child, w.child) << "box " << b;
    EXPECT_EQ(g.first, w.first) << "box " << b;
    EXPECT_EQ(g.count, w.count) << "box " << b;
    EXPECT_EQ(g.level, w.level) << "box " << b;
    EXPECT_EQ(g.num_children, w.num_children) << "box " << b;
  }
  ASSERT_EQ(got.num_points(), want.num_points());
  EXPECT_EQ(got.sorted_keys(), want.sorted_keys());
  // The permutation must map sorted positions back to the patched array.
  for (std::size_t i = 0; i < got.num_points(); ++i) {
    const Vec3 p = patched[got.original_index()[i]];
    EXPECT_EQ(got.sorted_points()[i].x, p.x);
    EXPECT_EQ(got.sorted_points()[i].y, p.y);
    EXPECT_EQ(got.sorted_points()[i].z, p.z);
  }
}

TEST(TreeUpdate, EmptyUpdateIsAFastPathNoOp) {
  Ensemble e = make_ensemble(1);
  const auto before = e.tree.sorted_keys();
  const auto r = e.tree.update({}, {}, {});
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->dirty_leaves, 0u);
  EXPECT_EQ(r->moved, 0u);
  EXPECT_EQ(e.tree.sorted_keys(), before);
  expect_matches_fresh_build(e.tree, e.pts, e.domain);
}

TEST(TreeUpdate, InLeafMovesPreserveStructure) {
  Ensemble e = make_ensemble(2);
  Rng rng(77);
  // Jitter ~5% of the points inside their current leaf cube: counts are
  // untouched, so the incremental path must always succeed.
  std::vector<PointMove> moves;
  for (std::uint32_t s = 0; s < e.tree.num_points(); s += 20) {
    const Cube leaf = e.tree.box(leaf_of(e.tree, s)).cube;
    moves.push_back({e.tree.original_index()[s], inside(leaf, rng)});
  }
  const auto r = e.tree.update(moves, {}, {});
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->moved, moves.size());
  EXPECT_GT(r->dirty_leaves, 0u);
  expect_matches_fresh_build(e.tree, patch(e.pts, moves, {}, {}), e.domain);
}

TEST(TreeUpdate, RandomizedMoveInsertEraseMatchesRebuild) {
  Ensemble e = make_ensemble(3);
  Rng rng(99);
  // Several rounds of mixed updates on the SAME tree: in-leaf moves plus
  // balanced erase/insert pairs within one leaf (leaf counts unchanged).
  auto pts = e.pts;
  for (int round = 0; round < 4; ++round) {
    std::vector<PointMove> moves;
    std::vector<std::uint32_t> erased;
    std::vector<Vec3> inserted;
    std::set<std::uint32_t> moved;
    for (int k = 0; k < 40; ++k) {
      const auto s =
          static_cast<std::uint32_t>(rng.below(e.tree.num_points()));
      const std::uint32_t o = e.tree.original_index()[s];
      if (!moved.insert(o).second) continue;  // one move per point
      const Cube leaf = e.tree.box(leaf_of(e.tree, s)).cube;
      moves.push_back({o, inside(leaf, rng)});
    }
    for (int k = 0; k < 10; ++k) {
      const auto s =
          static_cast<std::uint32_t>(rng.below(e.tree.num_points()));
      const std::uint32_t o = e.tree.original_index()[s];
      if (std::find(erased.begin(), erased.end(), o) != erased.end()) {
        continue;
      }
      // Drop moves aimed at an erased point: erase wins, and keeping both
      // would make the expected patch ambiguous.
      std::erase_if(moves, [o](const PointMove& m) { return m.index == o; });
      erased.push_back(o);
      inserted.push_back(inside(e.tree.box(leaf_of(e.tree, s)).cube, rng));
    }
    std::sort(erased.begin(), erased.end());
    const auto r = e.tree.update(moves, erased, inserted);
    ASSERT_TRUE(r.has_value()) << "round " << round;
    EXPECT_EQ(r->erased, erased.size());
    EXPECT_EQ(r->inserted, inserted.size());
    pts = patch(std::move(pts), moves, erased, inserted);
    expect_matches_fresh_build(e.tree, pts, e.domain);
  }
}

TEST(TreeUpdate, OutOfDomainMoveFallsBackUntouched) {
  Ensemble e = make_ensemble(4);
  const auto keys_before = e.tree.sorted_keys();
  const std::size_t boxes_before = e.tree.boxes().size();
  const std::vector<PointMove> moves{
      {0, {e.domain.center().x + e.domain.size * 10, 0, 0}}};
  EXPECT_FALSE(e.tree.update(moves, {}, {}).has_value());
  // Failed updates must leave the tree exactly as it was.
  EXPECT_EQ(e.tree.sorted_keys(), keys_before);
  EXPECT_EQ(e.tree.boxes().size(), boxes_before);
}

TEST(TreeUpdate, OverfillingALeafFallsBack) {
  Ensemble e = make_ensemble(5);
  Rng rng(5);
  // Pour threshold+1 new points into one leaf: a fresh build would refine
  // it, so the structure-preserving path must refuse.
  const Cube leaf = e.tree.box(leaf_of(e.tree, 0)).cube;
  std::vector<Vec3> inserted;
  for (int k = 0; k < kThreshold + 1; ++k) inserted.push_back(inside(leaf, rng));
  EXPECT_FALSE(e.tree.update({}, {}, inserted).has_value());
}

TEST(TreeUpdate, EmptyingALeafFallsBack) {
  Ensemble e = make_ensemble(6);
  // Erase every point of the leaf holding sorted point 0: a fresh build
  // would prune the box.
  const TreeBox& leaf = e.tree.box(leaf_of(e.tree, 0));
  std::vector<std::uint32_t> erased;
  for (std::uint32_t s = leaf.first; s < leaf.first + leaf.count; ++s) {
    erased.push_back(e.tree.original_index()[s]);
  }
  std::sort(erased.begin(), erased.end());
  EXPECT_FALSE(e.tree.update({}, erased, {}).has_value());
}

}  // namespace
}  // namespace amtfmm
