#include <gtest/gtest.h>

#include <set>

#include "geom/distributions.hpp"
#include "tree/tree.hpp"

namespace amtfmm {
namespace {

class TreeInvariants : public ::testing::TestWithParam<
                           std::tuple<Distribution, int, std::uint64_t>> {};

TEST_P(TreeInvariants, StructureIsConsistent) {
  const auto [dist, threshold, seed] = GetParam();
  Rng rng(seed);
  const auto pts = generate_points(dist, 5000, rng);
  const Cube domain = bounding_cube(pts, {});
  const Tree t = Tree::build(pts, domain, threshold, 4);

  ASSERT_FALSE(t.boxes().empty());
  EXPECT_EQ(t.box(t.root()).count, pts.size());
  EXPECT_EQ(t.box(t.root()).parent, kNoBox);

  std::size_t leaf_points = 0;
  for (BoxIndex b = 0; b < t.boxes().size(); ++b) {
    const TreeBox& box = t.box(b);
    // Points lie inside their box cube.
    for (std::uint32_t i = box.first; i < box.first + box.count; ++i) {
      EXPECT_TRUE(box.cube.contains(t.sorted_points()[i]))
          << "box " << b << " point " << i;
    }
    if (box.is_leaf()) {
      EXPECT_LE(box.count, static_cast<std::uint32_t>(threshold))
          << "leaf over threshold (unless depth-capped)";
      leaf_points += box.count;
      continue;
    }
    // Children partition the parent's point range in order.
    std::uint32_t cursor = box.first;
    int nchild = 0;
    for (int oct = 0; oct < 8; ++oct) {
      const BoxIndex c = box.child[static_cast<std::size_t>(oct)];
      if (c == kNoBox) continue;
      ++nchild;
      const TreeBox& cb = t.box(c);
      EXPECT_EQ(cb.parent, b);
      EXPECT_EQ(cb.level, box.level + 1);
      EXPECT_GT(cb.count, 0u) << "empty children must be pruned";
      EXPECT_EQ(cb.first, cursor);
      cursor += cb.count;
      // Child cube is the expected octant of the parent cube.
      const Cube expect = box.cube.child(oct);
      EXPECT_NEAR((cb.cube.low - expect.low).norm(), 0.0, 1e-12);
      EXPECT_NEAR(cb.cube.size, expect.size, 1e-12);
    }
    EXPECT_EQ(nchild, box.num_children);
    EXPECT_EQ(cursor, box.first + box.count);
  }
  EXPECT_EQ(leaf_points, pts.size()) << "leaves must partition the points";

  // The permutation is a bijection matching sorted_points.
  std::set<std::uint32_t> seen(t.original_index().begin(),
                               t.original_index().end());
  EXPECT_EQ(seen.size(), pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ((t.sorted_points()[i] - pts[t.original_index()[i]]).norm(), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TreeInvariants,
    ::testing::Combine(::testing::Values(Distribution::kCube,
                                         Distribution::kSphere,
                                         Distribution::kPlummer),
                       ::testing::Values(1, 7, 60, 500),
                       ::testing::Values(1u, 42u)));

TEST(Tree, LocalityChunksAreContiguousAndBalanced) {
  Rng rng(3);
  const auto pts = generate_points(Distribution::kCube, 1000, rng);
  const Cube domain = bounding_cube(pts, {});
  const Tree t = Tree::build(pts, domain, 20, 8);
  std::uint32_t prev = 0;
  std::vector<std::size_t> counts(8, 0);
  for (std::uint32_t i = 0; i < 1000; ++i) {
    const std::uint32_t loc = t.point_locality(i);
    EXPECT_GE(loc, prev) << "localities must be contiguous in Morton order";
    EXPECT_LT(loc, 8u);
    prev = loc;
    counts[loc]++;
  }
  for (std::size_t c : counts) EXPECT_EQ(c, 125u);
}

TEST(Tree, EmptyAndSinglePointEdgeCases) {
  const Cube unit{{0, 0, 0}, 1.0};
  const Tree empty = Tree::build({}, unit, 10, 2);
  EXPECT_EQ(empty.boxes().size(), 1u);
  EXPECT_TRUE(empty.box(0).is_leaf());

  const std::vector<Vec3> one{{0.25, 0.5, 0.75}};
  const Tree single = Tree::build(one, unit, 10, 2);
  EXPECT_EQ(single.boxes().size(), 1u);
  EXPECT_EQ(single.box(0).count, 1u);
}

TEST(Tree, SphereDataIsDeeperThanCubeData) {
  // The paper's motivation for the sphere distribution: highly non-uniform
  // trees with a longer critical path.
  Rng r1(5), r2(5);
  const auto cube_pts = generate_points(Distribution::kCube, 20000, r1);
  const auto sph_pts = generate_points(Distribution::kSphere, 20000, r2);
  const Tree tc = Tree::build(cube_pts, bounding_cube(cube_pts, {}), 60, 1);
  const Tree ts = Tree::build(sph_pts, bounding_cube(sph_pts, {}), 60, 1);
  EXPECT_GT(ts.max_level(), tc.max_level());
}

}  // namespace
}  // namespace amtfmm
