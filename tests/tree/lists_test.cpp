#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>

#include "geom/distributions.hpp"
#include "tree/lists.hpp"

namespace amtfmm {
namespace {

TEST(CubesAdjacent, BasicGeometry) {
  const Cube a{{0, 0, 0}, 1.0};
  EXPECT_TRUE(cubes_adjacent(a, a));
  EXPECT_TRUE(cubes_adjacent(a, Cube{{1.0, 0, 0}, 1.0}));     // face touch
  EXPECT_TRUE(cubes_adjacent(a, Cube{{1.0, 1.0, 1.0}, 1.0})); // corner touch
  EXPECT_FALSE(cubes_adjacent(a, Cube{{2.0, 0, 0}, 1.0}));    // one gap
  EXPECT_TRUE(cubes_adjacent(a, Cube{{0.25, 0.25, 0.25}, 0.25}));  // nested
  EXPECT_TRUE(cubes_adjacent(a, Cube{{1.0, 0.5, 0.5}, 0.125}));    // small touch
  EXPECT_FALSE(cubes_adjacent(a, Cube{{1.5, 0, 0}, 0.25}));
}

struct ListsCase {
  Distribution src_dist;
  Distribution tgt_dist;
  Vec3 tgt_offset;  // shift making ensembles overlap partially or fully
  int threshold;
  std::uint64_t seed;
};

class ListsProperty : public ::testing::TestWithParam<ListsCase> {};

/// The fundamental correctness property of the adaptive FMM decomposition:
/// for every target leaf, walking the root-to-leaf path and summing the
/// source points covered by l2/l4 at each ancestor plus l1/l3 at the leaf
/// accounts for every source point exactly once.
TEST_P(ListsProperty, EverySourceCoveredExactlyOnce) {
  const ListsCase c = GetParam();
  Rng rng(c.seed);
  const auto src = generate_points(c.src_dist, 4000, rng);
  const auto tgt = generate_points(c.tgt_dist, 3000, rng, c.tgt_offset);
  const DualTree dt = build_dual_tree(src, tgt, c.threshold, 2);
  const InteractionLists lists = build_lists(dt);

  const auto& tb = dt.target.boxes();
  const auto& sb = dt.source.boxes();
  auto box_points = [&](const std::vector<BoxIndex>& v) {
    std::size_t n = 0;
    for (BoxIndex s : v) n += sb[s].count;
    return n;
  };

  std::size_t checked = 0;
  for (BoxIndex b = 0; b < tb.size(); ++b) {
    if (!tb[b].is_leaf()) continue;
    // Also verify that pruned interior boxes have no deeper lists.
    std::size_t covered = box_points(lists.l1[b]) + box_points(lists.l3[b]);
    for (BoxIndex a = b;; a = tb[a].parent) {
      covered += box_points(lists.l4[a]);
      for (const List2Entry& e : lists.l2[a]) covered += sb[e.src].count;
      if (a == dt.target.root()) break;
    }
    EXPECT_EQ(covered, src.size()) << "target leaf " << b;
    ++checked;
  }
  EXPECT_GT(checked, 0u);
}

TEST_P(ListsProperty, GeometricConditionsHold) {
  const ListsCase c = GetParam();
  Rng rng(c.seed + 100);
  const auto src = generate_points(c.src_dist, 4000, rng);
  const auto tgt = generate_points(c.tgt_dist, 3000, rng, c.tgt_offset);
  const DualTree dt = build_dual_tree(src, tgt, c.threshold, 1);
  const InteractionLists lists = build_lists(dt);
  const auto& tb = dt.target.boxes();
  const auto& sb = dt.source.boxes();

  for (BoxIndex b = 0; b < tb.size(); ++b) {
    for (const List2Entry& e : lists.l2[b]) {
      const TreeBox& s = sb[e.src];
      EXPECT_EQ(s.level, tb[b].level) << "l2 entries are same-level";
      EXPECT_FALSE(cubes_adjacent(s.cube, tb[b].cube));
      const int mx = std::max({std::abs(e.di), std::abs(e.dj), std::abs(e.dk)});
      EXPECT_GE(mx, 2);
      EXPECT_LE(mx, 3);
      // The offset encodes the actual center displacement.
      const Vec3 d = s.cube.center() - tb[b].cube.center();
      EXPECT_NEAR(d.x, e.di * tb[b].cube.size, 1e-9);
      EXPECT_NEAR(d.y, e.dj * tb[b].cube.size, 1e-9);
      EXPECT_NEAR(d.z, e.dk * tb[b].cube.size, 1e-9);
    }
    for (const BoxIndex s : lists.l1[b]) {
      EXPECT_TRUE(sb[s].is_leaf());
      EXPECT_TRUE(cubes_adjacent(sb[s].cube, tb[b].cube));
      EXPECT_TRUE(tb[b].is_leaf());
    }
    for (const BoxIndex s : lists.l3[b]) {
      EXPECT_TRUE(tb[b].is_leaf());
      EXPECT_FALSE(cubes_adjacent(sb[s].cube, tb[b].cube));
      // Parent of an l3 box is adjacent: the multipole is valid at b but
      // b's local expansion would not converge (that is why it is M->T).
      EXPECT_TRUE(cubes_adjacent(sb[sb[s].parent].cube, tb[b].cube));
      EXPECT_LT(sb[s].cube.size, tb[b].cube.size);
    }
    for (const BoxIndex s : lists.l4[b]) {
      EXPECT_TRUE(sb[s].is_leaf());
      EXPECT_FALSE(cubes_adjacent(sb[s].cube, tb[b].cube));
      if (b != dt.target.root()) {
        EXPECT_TRUE(cubes_adjacent(sb[s].cube, tb[tb[b].parent].cube));
      }
      EXPECT_GT(sb[s].cube.size, tb[b].cube.size);
    }
    if (!lists.dag_leaf[b] && !tb[b].is_leaf()) {
      // Non-pruned interior boxes must not carry leaf-only lists.
      EXPECT_TRUE(lists.l1[b].empty());
      EXPECT_TRUE(lists.l3[b].empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ListsProperty,
    ::testing::Values(
        // identical-style ensembles (same distribution, overlapping)
        ListsCase{Distribution::kCube, Distribution::kCube, {0, 0, 0}, 30, 1},
        // partially overlapping
        ListsCase{Distribution::kCube, Distribution::kCube, {0.6, 0.2, 0}, 30, 2},
        // disjoint ensembles (exercises dual-tree pruning)
        ListsCase{Distribution::kCube, Distribution::kCube, {2.5, 0, 0}, 30, 3},
        // adaptive sphere data against cube targets
        ListsCase{Distribution::kSphere, Distribution::kCube, {0, 0, 0}, 60, 4},
        ListsCase{Distribution::kSphere, Distribution::kSphere, {0, 0, 0}, 60, 5},
        // tiny threshold -> deep trees
        ListsCase{Distribution::kPlummer, Distribution::kCube, {0.1, 0, 0}, 4, 6}));

TEST(Lists, DisjointFarEnsemblesPruneTargetTree) {
  Rng rng(9);
  const auto src = generate_points(Distribution::kCube, 3000, rng);
  const auto tgt = generate_points(Distribution::kCube, 3000, rng, {6, 0, 0});
  const DualTree dt = build_dual_tree(src, tgt, 30, 1);
  const InteractionLists lists = build_lists(dt);
  // Some interior target box must be marked as a dag leaf (pruned).
  bool pruned_interior = false;
  for (BoxIndex b = 0; b < dt.target.boxes().size(); ++b) {
    if (lists.dag_leaf[b] && !dt.target.box(b).is_leaf()) pruned_interior = true;
  }
  EXPECT_TRUE(pruned_interior);
}

}  // namespace
}  // namespace amtfmm
