// The resident evaluation pipeline: steady-state epochs reuse the tree +
// DAG + GAS/LCO arena with zero allocations, repeat evaluations are
// bit-identical on a deterministic schedule, batched requests demux
// exactly, and incremental geometry updates match a full rebuild.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "core/pipeline.hpp"
#include "geom/distributions.hpp"

namespace amtfmm {
namespace {

double max_rel_err(std::span<const double> a, std::span<const double> b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]) / std::max(1.0, std::abs(b[i])));
  }
  return m;
}

struct Problem {
  std::vector<Vec3> sources, targets;
  std::vector<double> charges;
};

Problem make_problem(std::size_t n, std::uint64_t seed) {
  Rng rs(seed), rt(seed + 1), rq(seed + 2);
  return {generate_points(Distribution::kCube, n, rs),
          generate_points(Distribution::kCube, n, rt),
          generate_charges(n, rq, 0.1, 1.0)};
}

EvalConfig small_cfg() {
  EvalConfig cfg;
  cfg.threshold = 40;
  cfg.localities = 2;
  cfg.cores_per_locality = 2;
  return cfg;
}

TEST(EvalPipeline, ResidentReuseIsAllocationFreeAndExact) {
  const Problem p = make_problem(3000, 21);
  const EvalConfig cfg = small_cfg();
  auto kernel = make_kernel("laplace");
  EvalPipeline pipe(*kernel, cfg, p.sources, p.targets);

  const EvalResult first = pipe.evaluate(p.charges);
  EXPECT_EQ(pipe.epochs(), 1u);
  EXPECT_GT(first.wire_bytes, 0u);
  EXPECT_EQ(first.wire_bytes, first.bytes_sent);

  for (int e = 2; e <= 4; ++e) {
    const EvalResult r = pipe.evaluate(p.charges);
    EXPECT_EQ(pipe.epochs(), static_cast<std::uint64_t>(e));
    // Steady state: the resident arena is re-armed, never grown, and the
    // re-arm is a measurable but tiny fraction of the epoch.
    EXPECT_EQ(pipe.gas_allocs_last_epoch(), 0u) << "epoch " << e;
    EXPECT_GT(pipe.last_reset_seconds(), 0.0);
    // Per-epoch transport identity and parity with epoch 1.
    EXPECT_EQ(r.wire_bytes, first.wire_bytes) << "epoch " << e;
    EXPECT_EQ(r.bytes_sent, first.bytes_sent) << "epoch " << e;
    EXPECT_EQ(r.parcels_sent, first.parcels_sent) << "epoch " << e;
    EXPECT_LT(max_rel_err(r.potentials, first.potentials), 1e-12);
  }

  // A fresh one-shot build of the identical problem agrees at 1e-12.
  Evaluator fresh(make_kernel("laplace"), cfg);
  const EvalResult f = fresh.evaluate(p.sources, p.charges, p.targets);
  EXPECT_LT(max_rel_err(first.potentials, f.potentials), 1e-12);
  EXPECT_EQ(first.wire_bytes, f.wire_bytes);
}

TEST(EvalPipeline, RepeatEpochsAreBitIdenticalOnOneWorker) {
  // One locality, one core: a deterministic schedule, so 100 resident
  // epochs must reproduce epoch 1 bit for bit (same sums in same order).
  const Problem p = make_problem(800, 22);
  EvalConfig cfg = small_cfg();
  cfg.localities = 1;
  cfg.cores_per_locality = 1;
  auto kernel = make_kernel("laplace");
  EvalPipeline pipe(*kernel, cfg, p.sources, p.targets);

  const EvalResult first = pipe.evaluate(p.charges);
  std::uint64_t allocs = 0;
  for (int e = 2; e <= 100; ++e) {
    const EvalResult r = pipe.evaluate(p.charges);
    allocs += pipe.gas_allocs_last_epoch();
    ASSERT_EQ(r.potentials.size(), first.potentials.size());
    ASSERT_EQ(std::memcmp(r.potentials.data(), first.potentials.data(),
                          r.potentials.size() * sizeof(double)),
              0)
        << "epoch " << e << " drifted";
  }
  EXPECT_EQ(pipe.epochs(), 100u);
  EXPECT_EQ(allocs, 0u);
}

TEST(EvalPipeline, BatchedRequestsDemuxExactly) {
  const Problem p = make_problem(2000, 23);
  auto kernel = make_kernel("laplace");
  EvalPipeline pipe(*kernel, small_cfg(), p.sources, p.targets);

  Rng rng(5);
  std::vector<EvalRequest> reqs(3);
  for (auto& r : reqs) {
    const std::size_t len = 1 + rng.below(p.targets.size() / 2);
    for (std::size_t j = 0; j < len; ++j) {
      r.targets.push_back(
          static_cast<std::uint32_t>(rng.below(p.targets.size())));
    }
  }
  reqs.push_back({});  // an empty request demuxes to an empty slice

  const BatchEvalResult b = pipe.evaluate_batch(p.charges, reqs);
  ASSERT_EQ(b.per_request.size(), reqs.size());
  for (std::size_t r = 0; r < reqs.size(); ++r) {
    ASSERT_EQ(b.per_request[r].size(), reqs[r].targets.size());
    for (std::size_t j = 0; j < reqs[r].targets.size(); ++j) {
      EXPECT_EQ(b.per_request[r][j],
                b.combined.potentials[reqs[r].targets[j]]);
    }
  }
  // The batched epoch is one ordinary traversal.
  EXPECT_EQ(pipe.epochs(), 1u);
}

TEST(EvalPipeline, EmptyUpdateKeepsArenaAndAnswer) {
  const Problem p = make_problem(1500, 24);
  // One worker: a deterministic schedule makes bit-identity meaningful.
  EvalConfig cfg = small_cfg();
  cfg.localities = 1;
  cfg.cores_per_locality = 1;
  auto kernel = make_kernel("laplace");
  EvalPipeline pipe(*kernel, cfg, p.sources, p.targets);
  const EvalResult before = pipe.evaluate(p.charges);

  const PipelineUpdateStats st = pipe.update_sources({});
  EXPECT_FALSE(st.rebuilt);
  EXPECT_EQ(st.dirty_leaves, 0u);
  EXPECT_EQ(pipe.rebuilds(), 0u);

  const EvalResult after = pipe.evaluate(p.charges);
  EXPECT_EQ(pipe.gas_allocs_last_epoch(), 0u);
  ASSERT_EQ(std::memcmp(after.potentials.data(), before.potentials.data(),
                        after.potentials.size() * sizeof(double)),
            0);
}

TEST(EvalPipeline, IncrementalUpdateMatchesFreshBuild) {
  const Problem p = make_problem(2500, 25);
  const EvalConfig cfg = small_cfg();
  auto kernel = make_kernel("laplace");
  EvalPipeline pipe(*kernel, cfg, p.sources, p.targets);
  (void)pipe.evaluate(p.charges);

  // Nudge interior source points by a fraction of their leaf size: tiny
  // enough to stay in-leaf for most, and any structure change falls back
  // to a rebuild — either way the answer must match a fresh build.
  const Tree& st = pipe.model().tree.source;
  PipelineUpdate u;
  const Cube dom = st.domain();
  for (std::uint32_t s = 0; s < st.num_points(); s += 37) {
    Vec3 pos = st.sorted_points()[s];
    const double h = dom.size / (1 << st.max_level());
    pos.x += 0.05 * h;
    // Interior points only: hull points would change the bounding cube a
    // fresh build computes, making 1e-12 parity meaningless.
    const Vec3 c = dom.center();
    if (std::abs(pos.x - c.x) > 0.45 * dom.size ||
        std::abs(pos.y - c.y) > 0.45 * dom.size ||
        std::abs(pos.z - c.z) > 0.45 * dom.size) {
      continue;
    }
    u.moves.push_back({st.original_index()[s], pos});
  }
  ASSERT_FALSE(u.moves.empty());
  const PipelineUpdateStats stx = pipe.update_sources(u);

  std::vector<Vec3> patched = p.sources;
  for (const PointMove& m : u.moves) patched[m.index] = m.position;
  const EvalResult inc = pipe.evaluate(p.charges);
  if (!stx.rebuilt) {
    EXPECT_GT(stx.dirty_leaves, 0u);
    EXPECT_EQ(pipe.gas_allocs_last_epoch(), 0u)
        << "incremental update must keep the resident arena";
  }

  Evaluator fresh(make_kernel("laplace"), cfg);
  const EvalResult f = fresh.evaluate(patched, p.charges, p.targets);
  EXPECT_LT(max_rel_err(inc.potentials, f.potentials), 1e-12);
}

TEST(EvalPipeline, StructureChangingUpdateRebuildsAndStaysCorrect) {
  const Problem p = make_problem(1500, 26);
  const EvalConfig cfg = small_cfg();
  auto kernel = make_kernel("laplace");
  EvalPipeline pipe(*kernel, cfg, p.sources, p.targets);
  (void)pipe.evaluate(p.charges);

  // Move one source far outside the tree domain: the incremental path
  // must refuse and the pipeline must transparently rebuild.
  const Cube dom = pipe.model().tree.source.domain();
  PipelineUpdate u;
  u.moves.push_back({0, {dom.center().x + dom.size * 4.0,
                         dom.center().y, dom.center().z}});
  const PipelineUpdateStats st = pipe.update_sources(u);
  EXPECT_TRUE(st.rebuilt);
  EXPECT_EQ(pipe.rebuilds(), 1u);

  std::vector<Vec3> patched = p.sources;
  patched[0] = u.moves[0].position;
  const EvalResult inc = pipe.evaluate(p.charges);
  EXPECT_EQ(pipe.epochs(), 1u) << "rebuild starts a fresh resident engine";

  Evaluator fresh(make_kernel("laplace"), cfg);
  const EvalResult f = fresh.evaluate(patched, p.charges, p.targets);
  EXPECT_LT(max_rel_err(inc.potentials, f.potentials), 1e-12);
  EXPECT_EQ(inc.wire_bytes, f.wire_bytes);
}

}  // namespace
}  // namespace amtfmm
