#include <gtest/gtest.h>

#include "core/evaluator.hpp"
#include "geom/distributions.hpp"
#include "tree/lists.hpp"

namespace amtfmm {
namespace {

/// The distribution policy of section IV: leaf expansions are pinned to the
/// data, but intermediate (It) nodes may move.  The comm-min policy must
/// never increase — and normally strictly decreases — the bytes crossing
/// localities, while leaving results bit-for-bit equivalent structurally.
TEST(Placement, CommMinReducesRemoteTraffic) {
  Rng rng(19);
  const std::size_t n = 40000;
  const auto src = generate_points(Distribution::kCube, n, rng);
  const auto tgt = generate_points(Distribution::kCube, n, rng);
  const int localities = 8;
  const DualTree dt = build_dual_tree(src, tgt, 60, localities);
  auto kernel = make_kernel("counting");
  kernel->setup(dt.source.domain().size, dt.source.max_level() + 1, 3);
  const InteractionLists lists = build_lists(dt);

  DagBuildConfig owner;
  owner.placement = Placement::kOwner;
  DagBuildConfig commmin;
  commmin.placement = Placement::kCommMin;
  const Dag d_owner = build_dag(dt, lists, *kernel, owner, localities);
  const Dag d_comm = build_dag(dt, lists, *kernel, commmin, localities);

  // Same DAG structure, different placement.
  ASSERT_EQ(d_owner.nodes.size(), d_comm.nodes.size());
  ASSERT_EQ(d_owner.edges.size(), d_comm.edges.size());

  auto remote_bytes = [](const Dag& d) {
    std::uint64_t total = 0;
    for (const DagNode& node : d.nodes) {
      for (std::uint32_t e = node.first_edge;
           e < node.first_edge + node.num_edges; ++e) {
        if (d.nodes[d.edges[e].target].locality != node.locality) {
          total += d.edges[e].bytes;
        }
      }
    }
    return total;
  };
  const std::uint64_t owner_bytes = remote_bytes(d_owner);
  const std::uint64_t comm_bytes = remote_bytes(d_comm);
  EXPECT_GT(owner_bytes, 0u);
  EXPECT_LT(comm_bytes, owner_bytes);

  // Leaf pinning invariant: S, T, leaf M and leaf L stay on their box's
  // locality under BOTH policies (the paper's hard constraint).
  for (const Dag* d : {&d_owner, &d_comm}) {
    for (const DagNode& node : d->nodes) {
      if (node.kind == NodeKind::kIt) continue;  // the movable class
      const TreeBox& box = (node.kind == NodeKind::kS ||
                            node.kind == NodeKind::kM ||
                            node.kind == NodeKind::kIs)
                               ? dt.source.box(node.box)
                               : dt.target.box(node.box);
      EXPECT_EQ(node.locality, box.locality);
    }
  }
}

/// Barnes-Hut accuracy must improve monotonically as theta shrinks, with
/// the usual theta ~ error tradeoff.
class BhTheta : public ::testing::TestWithParam<double> {};

TEST_P(BhTheta, AccuracyTracksOpeningAngle) {
  const double theta = GetParam();
  Rng rng(23);
  const std::size_t n = 3000;
  const auto pts = generate_points(Distribution::kPlummer, n, rng);
  const std::vector<double> mass(n, 1.0 / static_cast<double>(n));
  EvalConfig cfg;
  cfg.method = Method::kBarnesHut;
  cfg.bh_theta = theta;
  cfg.threshold = 30;
  Evaluator eval(make_kernel("laplace"), cfg);
  const EvalResult r = eval.evaluate(pts, mass, pts);
  const auto exact = direct_sum(eval.kernel(), pts, mass, pts);
  double num = 0, den = 0;
  for (std::size_t i = 0; i < n; ++i) {
    num += (r.potentials[i] - exact[i]) * (r.potentials[i] - exact[i]);
    den += exact[i] * exact[i];
  }
  const double err = std::sqrt(num / den);
  // p = 9 multipoles: even theta = 0.9 stays well under a percent.
  EXPECT_LT(err, 0.01 * theta + 1e-6) << "theta=" << theta;
}

INSTANTIATE_TEST_SUITE_P(Sweep, BhTheta, ::testing::Values(0.3, 0.5, 0.7, 0.9));

/// Larger-scale counting run exercising deep adaptive trees end to end
/// (sphere data, small threshold) — the structural stress test.
TEST(CountingAtScale, DeepAdaptiveTree) {
  Rng rng(29);
  const std::size_t ns = 20000, nt = 15000;
  const auto src = generate_points(Distribution::kSphere, ns, rng);
  const auto tgt = generate_points(Distribution::kSphere, nt, rng);
  const std::vector<double> q(ns, 1.0);
  EvalConfig cfg;
  cfg.threshold = 8;
  cfg.localities = 4;
  cfg.cores_per_locality = 2;
  Evaluator eval(make_kernel("counting"), cfg);
  const EvalResult r = eval.evaluate(src, q, tgt);
  for (std::size_t i = 0; i < nt; ++i) {
    ASSERT_NEAR(r.potentials[i], static_cast<double>(ns), 1e-5) << i;
  }
}

}  // namespace
}  // namespace amtfmm
