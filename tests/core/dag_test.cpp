#include <gtest/gtest.h>

#include "core/dag.hpp"
#include "core/evaluator.hpp"
#include "geom/distributions.hpp"

namespace amtfmm {
namespace {

TEST(ClassifyDirection, PartitionsWellSeparatedOffsets) {
  // Offsets are source-minus-target; direction is target-relative-to-source.
  EXPECT_EQ(classify_direction(0, 0, -2), Axis::kPlusZ);
  EXPECT_EQ(classify_direction(1, -1, -3), Axis::kPlusZ);
  EXPECT_EQ(classify_direction(0, 0, 2), Axis::kMinusZ);
  EXPECT_EQ(classify_direction(0, -2, 1), Axis::kPlusY);
  EXPECT_EQ(classify_direction(3, 2, -1), Axis::kMinusY);
  EXPECT_EQ(classify_direction(-2, 1, 0), Axis::kPlusX);
  EXPECT_EQ(classify_direction(3, -1, 1), Axis::kMinusX);
  // Every list-2 offset (max norm 2 or 3, outside the neighborhood) has a
  // class, and z takes priority over y over x.
  for (int i = -3; i <= 3; ++i) {
    for (int j = -3; j <= 3; ++j) {
      for (int k = -3; k <= 3; ++k) {
        if (std::max({std::abs(i), std::abs(j), std::abs(k)}) < 2) continue;
        const Axis d = classify_direction(i, j, k);
        (void)d;  // must not assert
      }
    }
  }
}

struct DagCase {
  const char* kernel;
  Method method;
  Distribution dist;
  Vec3 offset;
  int threshold;
  int localities;
};

/// Deterministic parameter printer (the default dumps the kernel-name
/// pointer, which varies under ASLR and breaks ctest name discovery).
void PrintTo(const DagCase& c, std::ostream* os) {
  *os << c.kernel << "_" << to_string(c.method) << "_" << to_string(c.dist)
      << "_t" << c.threshold << "_L" << c.localities;
}

class DagStructure : public ::testing::TestWithParam<DagCase> {};

TEST_P(DagStructure, IsAcyclicWithConsistentDegrees) {
  const DagCase c = GetParam();
  Rng rng(11);
  const auto src = generate_points(c.dist, 3000, rng);
  const auto tgt = generate_points(c.dist, 2500, rng, c.offset);
  const DualTree dt = build_dual_tree(src, tgt, c.threshold, c.localities);
  auto kernel = make_kernel(c.kernel);
  kernel->setup(dt.source.domain().size,
                std::max(dt.source.max_level(), dt.target.max_level()) + 1, 3);
  const InteractionLists lists = build_lists(dt);
  DagBuildConfig cfg;
  cfg.method = c.method;
  const Dag dag = build_dag(dt, lists, *kernel, cfg, c.localities);

  // In-degrees recomputed from edges must match the stored counts, and
  // topological peeling must consume every node (acyclicity).
  std::vector<std::uint32_t> indeg(dag.nodes.size(), 0);
  for (const DagEdge& e : dag.edges) indeg[e.target]++;
  std::vector<NodeIndex> ready;
  for (NodeIndex i = 0; i < dag.nodes.size(); ++i) {
    EXPECT_EQ(indeg[i], dag.nodes[i].in_degree) << "node " << i;
    if (indeg[i] == 0) {
      ready.push_back(i);
      EXPECT_TRUE(dag.nodes[i].kind == NodeKind::kS ||
                  dag.nodes[i].kind == NodeKind::kT);
    }
  }
  std::size_t seen = 0;
  while (!ready.empty()) {
    const NodeIndex n = ready.back();
    ready.pop_back();
    ++seen;
    const DagNode& node = dag.nodes[n];
    for (std::uint32_t e = node.first_edge; e < node.first_edge + node.num_edges;
         ++e) {
      if (--indeg[dag.edges[e].target] == 0) {
        ready.push_back(dag.edges[e].target);
      }
    }
  }
  EXPECT_EQ(seen, dag.nodes.size()) << "DAG must be acyclic and connected";

  const DagStats s = dag.stats();
  EXPECT_EQ(s.total_nodes, dag.nodes.size());
  EXPECT_EQ(s.total_edges, dag.edges.size());
  if (c.method != Method::kBarnesHut) {
    EXPECT_GT(s.nodes[static_cast<int>(NodeKind::kS)].count, 0u);
    EXPECT_GT(s.nodes[static_cast<int>(NodeKind::kT)].count, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DagStructure,
    ::testing::Values(
        DagCase{"counting", Method::kFmmAdvanced, Distribution::kCube, {0, 0, 0}, 30, 1},
        DagCase{"counting", Method::kFmmAdvanced, Distribution::kSphere, {0, 0, 0}, 30, 4},
        DagCase{"counting", Method::kFmmBasic, Distribution::kCube, {0.4, 0, 0}, 20, 2},
        DagCase{"counting", Method::kBarnesHut, Distribution::kCube, {0, 0, 0}, 40, 2},
        DagCase{"laplace", Method::kFmmAdvanced, Distribution::kPlummer, {0.2, 0.1, 0}, 15, 3}));

/// The decisive structural test (see kernels/counting.hpp): through the
/// full pipeline — tree, lists, merge-and-shift DAG, LCO engine, parcels,
/// multiple localities — every target must receive exactly one
/// contribution per source.
struct CountCase {
  Method method;
  Distribution src_dist;
  Distribution tgt_dist;
  Vec3 offset;
  int threshold;
  int localities;
  int cores;
  bool priority;
};

class CountingEndToEnd : public ::testing::TestWithParam<CountCase> {};

TEST_P(CountingEndToEnd, EveryTargetCountsEverySource) {
  const CountCase c = GetParam();
  Rng rng(77);
  const std::size_t ns = 4000, nt = 3000;
  const auto src = generate_points(c.src_dist, ns, rng);
  const auto tgt = generate_points(c.tgt_dist, nt, rng, c.offset);
  const std::vector<double> q(ns, 1.0);

  EvalConfig cfg;
  cfg.method = c.method;
  cfg.threshold = c.threshold;
  cfg.localities = c.localities;
  cfg.cores_per_locality = c.cores;
  cfg.split_priority = c.priority;
  Evaluator eval(make_kernel("counting"), cfg);
  const EvalResult r = eval.evaluate(src, q, tgt);
  ASSERT_EQ(r.potentials.size(), nt);
  for (std::size_t i = 0; i < nt; ++i) {
    ASSERT_NEAR(r.potentials[i], static_cast<double>(ns), 1e-6)
        << "target " << i << " (double counted or dropped interactions)";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CountingEndToEnd,
    ::testing::Values(
        CountCase{Method::kFmmAdvanced, Distribution::kCube, Distribution::kCube, {0, 0, 0}, 60, 1, 2, false},
        CountCase{Method::kFmmAdvanced, Distribution::kCube, Distribution::kCube, {0, 0, 0}, 9, 4, 2, false},
        CountCase{Method::kFmmAdvanced, Distribution::kSphere, Distribution::kSphere, {0, 0, 0}, 35, 2, 2, true},
        CountCase{Method::kFmmAdvanced, Distribution::kSphere, Distribution::kCube, {0.7, 0.3, 0}, 25, 3, 1, false},
        CountCase{Method::kFmmAdvanced, Distribution::kCube, Distribution::kCube, {3.0, 0, 0}, 30, 2, 2, false},
        CountCase{Method::kFmmAdvanced, Distribution::kPlummer, Distribution::kPlummer, {0, 0, 0}, 12, 2, 2, false},
        CountCase{Method::kFmmBasic, Distribution::kCube, Distribution::kCube, {0, 0, 0}, 30, 2, 2, false},
        CountCase{Method::kFmmBasic, Distribution::kSphere, Distribution::kSphere, {0, 0, 0}, 45, 1, 3, false},
        CountCase{Method::kBarnesHut, Distribution::kCube, Distribution::kCube, {0, 0, 0}, 30, 2, 2, false}));

TEST(DagStatsTable, MatchesPaperShapeOnUniformCube) {
  // Qualitative Table I/II checks on uniform cube data: every Is has
  // in-degree exactly 1 (M->I), every L at most 2 inputs in the advanced
  // method with identical ensembles (I->L + L->L), S->L and M->L absent.
  Rng rng(5);
  const auto src = generate_points(Distribution::kCube, 20000, rng);
  const auto tgt = generate_points(Distribution::kCube, 20000, rng);
  const DualTree dt = build_dual_tree(src, tgt, 60, 1);
  auto kernel = make_kernel("counting");
  kernel->setup(dt.source.domain().size, dt.source.max_level() + 1, 3);
  const InteractionLists lists = build_lists(dt);
  DagBuildConfig cfg;
  const Dag dag = build_dag(dt, lists, *kernel, cfg, 1);
  const DagStats s = dag.stats();
  const auto& is = s.nodes[static_cast<int>(NodeKind::kIs)];
  EXPECT_EQ(is.din_min, 1u);
  EXPECT_EQ(is.din_max, 1u);
  // On the paper's 30M-point cube, list 4 is exactly empty; at this size a
  // few leaves end one level coarser, so merely require S->L to be rare.
  EXPECT_LT(s.edges[static_cast<int>(Operator::kS2L)].count,
            s.edges[static_cast<int>(Operator::kI2I)].count / 100);
  EXPECT_EQ(s.edges[static_cast<int>(Operator::kM2L)].count, 0u);
  EXPECT_EQ(s.edges[static_cast<int>(Operator::kM2I)].count,
            s.nodes[static_cast<int>(NodeKind::kIs)].count);
  EXPECT_EQ(s.edges[static_cast<int>(Operator::kI2L)].count,
            s.nodes[static_cast<int>(NodeKind::kIt)].count);
  // Merge-and-shift must beat the naive list-2 edge count.
  std::size_t l2 = lists.total_l2();
  EXPECT_LT(s.edges[static_cast<int>(Operator::kI2I)].count, l2);
}

}  // namespace
}  // namespace amtfmm
