#include <gtest/gtest.h>

#include <cmath>

#include "core/evaluator.hpp"
#include "geom/distributions.hpp"

namespace amtfmm {
namespace {

double rel_l2_error(std::span<const double> got, std::span<const double> ref) {
  double num = 0, den = 0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    num += (got[i] - ref[i]) * (got[i] - ref[i]);
    den += ref[i] * ref[i];
  }
  return std::sqrt(num / den);
}

struct AccuracyCase {
  const char* kernel;
  Method method;
  Distribution dist;
  Vec3 offset;
  double tolerance;
};

/// Deterministic parameter printer: the default one dumps raw bytes, which
/// include the kernel-name pointer and change under ASLR, breaking ctest's
/// discovered test names.
void PrintTo(const AccuracyCase& c, std::ostream* os) {
  *os << c.kernel << "_" << to_string(c.method) << "_" << to_string(c.dist)
      << "_off" << c.offset.x;
}

class EvaluatorAccuracy : public ::testing::TestWithParam<AccuracyCase> {};

TEST_P(EvaluatorAccuracy, MatchesDirectSummationToThreeDigits) {
  const AccuracyCase c = GetParam();
  Rng rng(123);
  const std::size_t n = 2500;
  const auto src = generate_points(c.dist, n, rng);
  const auto tgt = generate_points(c.dist, n, rng, c.offset);
  const auto q = generate_charges(n, rng, 0.1, 1.0);

  EvalConfig cfg;
  cfg.method = c.method;
  cfg.threshold = 40;
  cfg.localities = 2;
  cfg.cores_per_locality = 2;
  Evaluator eval(make_kernel(c.kernel, /*yukawa_lambda=*/2.0), cfg);
  const EvalResult r = eval.evaluate(src, q, tgt);
  const auto ref = direct_sum(eval.kernel(), src, q, tgt);
  EXPECT_LT(rel_l2_error(r.potentials, ref), c.tolerance)
      << c.kernel << " " << to_string(c.method);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EvaluatorAccuracy,
    ::testing::Values(
        AccuracyCase{"laplace", Method::kFmmAdvanced, Distribution::kCube, {0, 0, 0}, 1e-3},
        AccuracyCase{"laplace", Method::kFmmAdvanced, Distribution::kSphere, {0, 0, 0}, 1e-3},
        AccuracyCase{"laplace", Method::kFmmBasic, Distribution::kCube, {0, 0, 0}, 1e-3},
        AccuracyCase{"laplace", Method::kBarnesHut, Distribution::kCube, {0, 0, 0}, 2e-3},
        AccuracyCase{"laplace", Method::kFmmAdvanced, Distribution::kCube, {0.6, 0.2, 0.1}, 1e-3},
        AccuracyCase{"yukawa", Method::kFmmAdvanced, Distribution::kCube, {0, 0, 0}, 2e-3},
        AccuracyCase{"yukawa", Method::kFmmAdvanced, Distribution::kSphere, {0, 0, 0}, 2e-3},
        AccuracyCase{"yukawa", Method::kFmmBasic, Distribution::kCube, {0, 0, 0}, 2e-3}));

TEST(Evaluator, MultiLocalityMatchesSingleLocality) {
  Rng rng(9);
  const std::size_t n = 3000;
  const auto src = generate_points(Distribution::kCube, n, rng);
  const auto tgt = generate_points(Distribution::kCube, n, rng);
  const auto q = generate_charges(n, rng);

  EvalConfig one;
  one.localities = 1;
  one.cores_per_locality = 1;
  one.threshold = 30;
  Evaluator e1(make_kernel("laplace"), one);
  const auto r1 = e1.evaluate(src, q, tgt);

  EvalConfig many = one;
  many.localities = 4;
  many.cores_per_locality = 2;
  Evaluator e4(make_kernel("laplace"), many);
  const auto r4 = e4.evaluate(src, q, tgt);
  ASSERT_GT(r4.parcels_sent, 0u) << "4 localities must exchange parcels";

  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(r1.potentials[i], r4.potentials[i],
                1e-9 * std::abs(r1.potentials[i]) + 1e-12);
  }
}

TEST(Evaluator, PriorityModeIsNumericallyIdentical) {
  Rng rng(10);
  const std::size_t n = 2000;
  const auto src = generate_points(Distribution::kSphere, n, rng);
  const auto tgt = generate_points(Distribution::kSphere, n, rng);
  const auto q = generate_charges(n, rng);
  EvalConfig cfg;
  cfg.threshold = 25;
  cfg.localities = 2;
  cfg.cores_per_locality = 2;
  Evaluator plain(make_kernel("laplace"), cfg);
  cfg.split_priority = true;
  Evaluator prio(make_kernel("laplace"), cfg);
  const auto a = plain.evaluate(src, q, tgt);
  const auto b = prio.evaluate(src, q, tgt);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(a.potentials[i], b.potentials[i],
                1e-9 * std::abs(a.potentials[i]) + 1e-12);
  }
}

TEST(Evaluator, TracingCollectsOperatorEvents) {
  Rng rng(4);
  const std::size_t n = 2000;
  const auto src = generate_points(Distribution::kCube, n, rng);
  const auto tgt = generate_points(Distribution::kCube, n, rng);
  const auto q = generate_charges(n, rng);
  EvalConfig cfg;
  cfg.trace = true;
  cfg.threshold = 40;
  Evaluator eval(make_kernel("laplace"), cfg);
  const auto r = eval.evaluate(src, q, tgt);
  EXPECT_FALSE(r.trace.empty());
  bool saw_s2m = false, saw_i2i = false;
  for (const auto& e : r.trace) {
    if (e.cls == static_cast<std::uint8_t>(Operator::kS2M)) saw_s2m = true;
    if (e.cls == static_cast<std::uint8_t>(Operator::kI2I)) saw_i2i = true;
  }
  EXPECT_TRUE(saw_s2m);
  EXPECT_TRUE(saw_i2i);
}

TEST(Evaluator, SimulatedEvaluationScalesWithCores) {
  Rng rng(21);
  const std::size_t n = 30000;
  const auto src = generate_points(Distribution::kCube, n, rng);
  const auto tgt = generate_points(Distribution::kCube, n, rng);

  EvalConfig cfg;
  Evaluator eval(make_kernel("counting"), cfg);
  SimConfig sim;
  sim.cost = CostModel::paper("laplace");
  sim.localities = 1;
  sim.cores_per_locality = 32;
  const SimResult r32 = eval.simulate(src, tgt, sim);
  sim.localities = 4;
  const SimResult r128 = eval.simulate(src, tgt, sim);
  EXPECT_GT(r32.virtual_time, 0.0);
  EXPECT_LT(r128.virtual_time, r32.virtual_time)
      << "more cores must not be slower";
  const double speedup = r32.virtual_time / r128.virtual_time;
  EXPECT_GT(speedup, 1.5);
  EXPECT_LE(speedup, 4.3);
  EXPECT_GT(r128.bytes_sent, 0u);
}

TEST(Evaluator, RejectsBadConfiguration) {
  EvalConfig cfg;
  cfg.threshold = 0;
  EXPECT_THROW(Evaluator(make_kernel("laplace"), cfg), config_error);
}

}  // namespace
}  // namespace amtfmm
