#include <gtest/gtest.h>

#include <cmath>

#include "core/evaluator.hpp"
#include "geom/distributions.hpp"

namespace amtfmm {
namespace {

CoalesceConfig coalesce_on() {
  CoalesceConfig c;
  c.enabled = true;
  return c;
}

double rel_l2_error(std::span<const double> got, std::span<const double> ref) {
  double num = 0, den = 0;
  for (std::size_t i = 0; i < got.size(); ++i) {
    num += (got[i] - ref[i]) * (got[i] - ref[i]);
    den += ref[i] * ref[i];
  }
  return std::sqrt(num / den);
}

TEST(CoalescingEval, LaplacePotentialsMatchWithCoalescingOnAndOff) {
  Rng rng(17);
  const std::size_t n = 2500;
  const auto src = generate_points(Distribution::kCube, n, rng);
  const auto tgt = generate_points(Distribution::kCube, n, rng);
  const auto q = generate_charges(n, rng);

  EvalConfig cfg;
  cfg.threshold = 30;
  cfg.localities = 4;
  cfg.cores_per_locality = 2;
  Evaluator off(make_kernel("laplace"), cfg);
  cfg.coalesce = coalesce_on();
  Evaluator on(make_kernel("laplace"), cfg);

  const auto a = off.evaluate(src, q, tgt);
  const auto b = on.evaluate(src, q, tgt);

  // Same DAG, same arithmetic per edge; only message batching differs.
  // Accumulation order varies with scheduling (in both runs), so compare
  // to a tight tolerance rather than bit-for-bit.
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(a.potentials[i], b.potentials[i],
                1e-9 * std::abs(a.potentials[i]) + 1e-12);
  }
  const auto ref = direct_sum(on.kernel(), src, q, tgt);
  EXPECT_LT(rel_l2_error(b.potentials, ref), 1e-3);

  EXPECT_EQ(b.comm.parcels, a.comm.parcels)
      << "coalescing must not change the logical parcel stream";
  EXPECT_LT(b.comm.batches, b.comm.parcels);
  EXPECT_GT(b.comm.coalescing_factor(), 1.0);
  EXPECT_DOUBLE_EQ(a.comm.coalescing_factor(), 1.0);
}

TEST(CoalescingEval, CountingKernelIsExactlyIdentical) {
  // The counting kernel is integer-valued arithmetic in doubles: exact
  // under any accumulation order, so the parity here is bit-for-bit.
  Rng rng(5);
  const std::size_t n = 1500;
  const auto src = generate_points(Distribution::kSphere, n, rng);
  const auto tgt = generate_points(Distribution::kSphere, n, rng);
  const std::vector<double> q(n, 1.0);

  EvalConfig cfg;
  cfg.threshold = 25;
  cfg.localities = 3;
  cfg.cores_per_locality = 2;
  Evaluator off(make_kernel("counting"), cfg);
  cfg.coalesce = coalesce_on();
  Evaluator on(make_kernel("counting"), cfg);

  const auto a = off.evaluate(src, q, tgt);
  const auto b = on.evaluate(src, q, tgt);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(a.potentials[i], b.potentials[i]) << "target " << i;
  }
}

TEST(CoalescingEval, SimulationCoalescingShrinksNetworkTime) {
  Rng rng(23);
  const std::size_t n = 20000;
  const auto src = generate_points(Distribution::kCube, n, rng);
  const auto tgt = generate_points(Distribution::kCube, n, rng);

  EvalConfig cfg;
  Evaluator eval(make_kernel("counting"), cfg);
  SimConfig sim;
  sim.cost = CostModel::paper("laplace");
  sim.localities = 4;
  sim.cores_per_locality = 8;
  // A latency-bound interconnect (high alpha): the per-message cost is
  // what coalescing amortizes, so the win must show in the makespan.
  sim.network.latency = 20e-6;
  const SimResult off = eval.simulate(src, tgt, sim);
  sim.coalesce = coalesce_on();
  sim.coalesce.flush_deadline = 10e-6;  // cap the added buffering delay
  const SimResult on = eval.simulate(src, tgt, sim);

  EXPECT_EQ(on.comm.parcels, off.comm.parcels);
  EXPECT_EQ(on.bytes_sent, off.bytes_sent);
  EXPECT_LT(on.comm.batches, on.comm.parcels);
  EXPECT_GT(on.comm.coalescing_factor(), 1.0);
  EXPECT_LT(on.virtual_time, off.virtual_time)
      << "batched messages must pay fewer alphas on the modelled network";
}

TEST(CoalescingEval, RealModeSurfacesCommStats) {
  Rng rng(31);
  const std::size_t n = 3000;
  const auto src = generate_points(Distribution::kCube, n, rng);
  const auto tgt = generate_points(Distribution::kCube, n, rng);
  const auto q = generate_charges(n, rng);

  EvalConfig cfg;
  cfg.threshold = 30;
  cfg.localities = 4;
  cfg.cores_per_locality = 2;
  cfg.coalesce = coalesce_on();
  cfg.trace = true;
  Evaluator eval(make_kernel("laplace"), cfg);
  const auto r = eval.evaluate(src, q, tgt);

  EXPECT_GT(r.comm.parcels, 0u);
  EXPECT_GT(r.comm.coalescing_factor(), 1.0);
  EXPECT_EQ(r.comm.parcels, r.parcels_sent);
  EXPECT_EQ(r.comm.bytes, r.bytes_sent);
  std::uint64_t per_dst = 0;
  for (const auto v : r.comm.parcels_to) per_dst += v;
  EXPECT_EQ(per_dst, r.comm.parcels);
  EXPECT_EQ(r.comm_trace.size(), r.comm.batches);
}

}  // namespace
}  // namespace amtfmm
