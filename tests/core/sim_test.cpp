#include <gtest/gtest.h>

#include <map>

#include "core/evaluator.hpp"
#include "geom/distributions.hpp"

namespace amtfmm {
namespace {

/// Real-mode and sim-mode runs of the same problem must execute the same
/// DAG: identical per-class operator event counts.
TEST(SimRealConsistency, SameOperatorEventCounts) {
  Rng rng(31);
  const std::size_t n = 5000;
  const auto src = generate_points(Distribution::kCube, n, rng);
  const auto tgt = generate_points(Distribution::kCube, n, rng);
  const auto q = generate_charges(n, rng);

  EvalConfig cfg;
  cfg.threshold = 40;
  cfg.localities = 2;
  cfg.cores_per_locality = 2;
  cfg.trace = true;
  Evaluator eval(make_kernel("laplace"), cfg);
  const EvalResult real = eval.evaluate(src, q, tgt);

  SimConfig sim;
  sim.localities = 2;
  sim.cores_per_locality = 2;
  sim.cost = CostModel::paper("laplace");
  sim.trace = true;
  const SimResult simulated = eval.simulate(src, tgt, sim);

  std::map<int, std::size_t> real_counts, sim_counts;
  for (const auto& e : real.trace) real_counts[e.cls]++;
  for (const auto& e : simulated.trace) sim_counts[e.cls]++;
  EXPECT_EQ(real_counts, sim_counts);
}

TEST(SimRealConsistency, SimIsDeterministic) {
  Rng rng(5);
  const std::size_t n = 8000;
  const auto src = generate_points(Distribution::kSphere, n, rng);
  const auto tgt = generate_points(Distribution::kSphere, n, rng);
  EvalConfig cfg;
  Evaluator eval(make_kernel("counting"), cfg);
  SimConfig sim;
  sim.localities = 4;
  sim.cost = CostModel::paper("laplace");
  const double a = eval.simulate(src, tgt, sim).virtual_time;
  const double b = eval.simulate(src, tgt, sim).virtual_time;
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(SimRealConsistency, UtilizationIntegralEqualsTotalWork) {
  // sum_k f_k * n * dt == total traced busy time (conservation check of the
  // paper's equations 1-2 applied to an actual run).
  Rng rng(6);
  const std::size_t n = 10000;
  const auto src = generate_points(Distribution::kCube, n, rng);
  const auto tgt = generate_points(Distribution::kCube, n, rng);
  EvalConfig cfg;
  Evaluator eval(make_kernel("counting"), cfg);
  SimConfig sim;
  sim.localities = 2;
  sim.cores_per_locality = 8;
  sim.cost = CostModel::paper("laplace");
  sim.trace = true;
  const SimResult r = eval.simulate(src, tgt, sim);
  double busy = 0;
  for (const auto& e : r.trace) busy += e.t1 - e.t0;
  const int m = 50;
  const auto prof = utilization(r.trace, 0.0, r.virtual_time, m, r.total_cores);
  double integral = 0;
  for (double f : prof.total) {
    integral += f * r.total_cores * (r.virtual_time / m);
  }
  EXPECT_NEAR(integral, busy, 1e-6 * busy);
  // And utilization never exceeds 1 (cores cannot be more than busy).
  for (double f : prof.total) EXPECT_LE(f, 1.0 + 1e-9);
}

TEST(SimPriority, PriorityNeverHurtsAtHighCoreCounts) {
  Rng rng(8);
  const std::size_t n = 60000;
  const auto src = generate_points(Distribution::kCube, n, rng);
  const auto tgt = generate_points(Distribution::kCube, n, rng);
  EvalConfig cfg;
  Evaluator eval(make_kernel("counting"), cfg);
  SimConfig sim;
  sim.localities = 16;  // 512 cores: the starved regime
  sim.cost = CostModel::paper("laplace");
  sim.split_priority = false;
  const double plain = eval.simulate(src, tgt, sim).virtual_time;
  sim.split_priority = true;
  const double prio = eval.simulate(src, tgt, sim).virtual_time;
  EXPECT_LE(prio, plain * 1.05)
      << "priorities must not significantly hurt the makespan";
}

TEST(EvaluatorEdgeCases, TinyProblemsFallBackToDirectPairs) {
  // N below the threshold: one leaf box, everything through S->T.
  Rng rng(2);
  const auto src = generate_points(Distribution::kCube, 25, rng);
  const auto tgt = generate_points(Distribution::kCube, 30, rng);
  const auto q = generate_charges(25, rng);
  EvalConfig cfg;
  cfg.threshold = 60;
  Evaluator eval(make_kernel("laplace"), cfg);
  const EvalResult r = eval.evaluate(src, q, tgt);
  const auto exact = direct_sum(eval.kernel(), src, q, tgt);
  for (std::size_t i = 0; i < exact.size(); ++i) {
    EXPECT_NEAR(r.potentials[i], exact[i], 1e-12 * std::abs(exact[i]));
  }
}

TEST(EvaluatorEdgeCases, SinglePointAndIdenticalEnsembles) {
  EvalConfig cfg;
  Evaluator eval(make_kernel("laplace"), cfg);
  const std::vector<Vec3> one{{0.3, 0.4, 0.5}};
  const std::vector<double> q{2.0};
  // Source == target: the self term is excluded by the r->0 convention.
  const EvalResult r = eval.evaluate(one, q, one);
  EXPECT_DOUBLE_EQ(r.potentials[0], 0.0);

  // Identical larger ensembles (the traditional N-body case).
  Rng rng(14);
  const auto pts = generate_points(Distribution::kCube, 3000, rng);
  const auto qs = generate_charges(3000, rng);
  EvalConfig cfg2;
  cfg2.threshold = 30;
  Evaluator eval2(make_kernel("laplace"), cfg2);
  const EvalResult rr = eval2.evaluate(pts, qs, pts);
  const auto exact = direct_sum(eval2.kernel(), pts, qs, pts);
  double num = 0, den = 0;
  for (std::size_t i = 0; i < exact.size(); ++i) {
    num += (rr.potentials[i] - exact[i]) * (rr.potentials[i] - exact[i]);
    den += exact[i] * exact[i];
  }
  EXPECT_LT(std::sqrt(num / den), 1e-3);
}

TEST(EvaluatorEdgeCases, StronglyScreenedYukawaStillCorrect) {
  // lambda * box_size above the accuracy budget at coarse levels: the
  // plane-wave expansions there are empty, and the potential is dominated
  // by near-field terms.  Correctness must be unaffected.
  Rng rng(15);
  const std::size_t n = 4000;
  const auto src = generate_points(Distribution::kCube, n, rng);
  const auto tgt = generate_points(Distribution::kCube, n, rng);
  const auto q = generate_charges(n, rng);
  EvalConfig cfg;
  cfg.threshold = 30;
  Evaluator eval(make_kernel("yukawa", /*lambda=*/25.0), cfg);
  const EvalResult r = eval.evaluate(src, q, tgt);
  EXPECT_EQ(eval.kernel().x_count(0), 0u) << "root-level X must be empty";
  const auto exact = direct_sum(eval.kernel(), src, q, tgt);
  double num = 0, den = 0;
  for (std::size_t i = 0; i < n; ++i) {
    num += (r.potentials[i] - exact[i]) * (r.potentials[i] - exact[i]);
    den += exact[i] * exact[i];
  }
  EXPECT_LT(std::sqrt(num / den), 2e-3);
}

TEST(EvaluatorAccuracyScaling, MoreDigitsGiveSmallerError) {
  Rng rng(16);
  const std::size_t n = 1500;
  const auto src = generate_points(Distribution::kCube, n, rng);
  const auto tgt = generate_points(Distribution::kCube, n, rng);
  const auto q = generate_charges(n, rng);
  auto kernel = make_kernel("laplace");
  const auto exact = direct_sum(*kernel, src, q, tgt);
  double prev = 1.0;
  for (int digits : {1, 2, 3}) {
    EvalConfig cfg;
    cfg.digits = digits;
    cfg.threshold = 30;
    Evaluator eval(make_kernel("laplace"), cfg);
    const EvalResult r = eval.evaluate(src, q, tgt);
    double num = 0, den = 0;
    for (std::size_t i = 0; i < n; ++i) {
      num += (r.potentials[i] - exact[i]) * (r.potentials[i] - exact[i]);
      den += exact[i] * exact[i];
    }
    const double err = std::sqrt(num / den);
    EXPECT_LT(err, std::pow(10.0, -digits) * 5.0) << digits << " digits";
    EXPECT_LT(err, prev) << "error must shrink with requested digits";
    prev = err;
  }
}

}  // namespace
}  // namespace amtfmm
