// Tests of the GAS-resident expansion-LCO machinery: trigger-once
// semantics under concurrent inputs, late continuations, the expansion
// wire codec, per-edge wire-format arithmetic, and the engine-level
// guarantee that transport bytes equal serialized bytes.

#include "core/expansion_lco.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "core/evaluator.hpp"
#include "geom/distributions.hpp"

namespace amtfmm {
namespace {

/// Minimal LCO with the ExpansionLCO contract instrumented: counts
/// reductions and on_fire invocations.
class ProbeLCO final : public LCO {
 public:
  ProbeLCO(Executor& ex, int inputs) : LCO(ex, inputs) {}
  std::atomic<int> reduced{0};
  std::atomic<int> fired{0};

 protected:
  void reduce(std::span<const std::byte>) override {
    reduced.fetch_add(1, std::memory_order_relaxed);
  }
  void on_fire() override { fired.fetch_add(1, std::memory_order_relaxed); }
};

TEST(ExpansionLcoTrigger, FiresExactlyOnceUnderConcurrentInputs) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 250;
  for (int round = 0; round < 20; ++round) {
    ThreadExecutor ex(1, 2);
    ProbeLCO lco(ex, kThreads * kPerThread);
    std::atomic<int> continuations{0};
    Task t;
    t.fn = [&continuations] { continuations.fetch_add(1); };
    lco.register_continuation(std::move(t));
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; ++i) {
      threads.emplace_back([&] {
        const double v = 1.0;
        for (int k = 0; k < kPerThread; ++k) {
          lco.set_input(std::as_bytes(std::span<const double>(&v, 1)));
        }
      });
    }
    for (auto& th : threads) th.join();
    ex.drain();
    EXPECT_TRUE(lco.triggered());
    EXPECT_EQ(lco.reduced.load(), kThreads * kPerThread);
    EXPECT_EQ(lco.fired.load(), 1);
    EXPECT_EQ(continuations.load(), 1);
  }
}

TEST(ExpansionLcoTrigger, LateContinuationFiresImmediately) {
  ThreadExecutor ex(1, 2);
  ProbeLCO lco(ex, 1);
  lco.set_input(dep_record());
  ASSERT_TRUE(lco.triggered());
  std::atomic<bool> ran{false};
  Task t;
  t.fn = [&ran] { ran.store(true); };
  lco.register_continuation(std::move(t));
  ex.drain();
  EXPECT_TRUE(ran.load());
}

#if GTEST_HAS_DEATH_TEST
TEST(ExpansionLcoTriggerDeathTest, InputAfterTriggerAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ThreadExecutor ex(1, 1);
  ProbeLCO lco(ex, 1);
  lco.set_input(dep_record());
  EXPECT_DEATH(lco.set_input(dep_record()), "");
}
#endif

double max_abs(const CoeffVec& v) {
  double m = 0.0;
  for (const cdouble& c : v) m = std::max(m, std::abs(c));
  return m;
}

/// pack -> unpack must reproduce the expansion (conjugate-symmetric wire
/// halving for the spherical-harmonic kernels, raw copy otherwise).
void expect_roundtrip(const CoeffVec& full, const CoeffVec& back,
                      const char* what) {
  ASSERT_EQ(back.size(), full.size()) << what;
  const double scale = std::max(1.0, max_abs(full));
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_NEAR(full[i].real(), back[i].real(), 1e-12 * scale) << what << i;
    EXPECT_NEAR(full[i].imag(), back[i].imag(), 1e-12 * scale) << what << i;
  }
}

class ExpansionLcoCodec : public ::testing::TestWithParam<const char*> {};

TEST_P(ExpansionLcoCodec, SerializationRoundTripsEveryPayloadKind) {
  auto kernel = make_kernel(GetParam(), /*yukawa_lambda=*/2.0);
  kernel->setup(1.0, 4, 3);
  const int level = 2;

  Rng rng(77);
  const auto pts =
      generate_points(Distribution::kCube, 64, rng, {0.375, 0.375, 0.375});
  const auto q = generate_charges(64, rng, 0.1, 1.0);
  const Vec3 center{0.5, 0.5, 0.5};

  // M coefficients (physically generated: the wire format's conjugate
  // symmetry must hold).
  CoeffVec m;
  kernel->s2m(pts, q, center, level, m);
  ASSERT_EQ(m.size(), kernel->m_count(level));
  std::vector<std::byte> wire(kernel->m_wire_bytes(level));
  kernel->pack_m(m, level, wire.data());
  CoeffVec back;
  kernel->unpack_m(wire, level, back);
  expect_roundtrip(m, back, "M");

  // L coefficients via S2L.
  CoeffVec l(kernel->l_count(level), cdouble{});
  kernel->s2l_acc(pts, q, {0.9, 0.9, 0.9}, level, l);
  wire.assign(kernel->l_wire_bytes(level), std::byte{});
  kernel->pack_l(l, level, wire.data());
  kernel->unpack_l(wire, level, back);
  expect_roundtrip(l, back, "L");

  // Intermediate (plane-wave) expansions ship raw: exact round-trip even
  // for arbitrary coefficient values.
  if (kernel->supports_merge_and_shift() && kernel->x_count(level) > 0) {
    CoeffVec x(kernel->x_count(level));
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] = cdouble(std::sin(0.1 * static_cast<double>(i)),
                     std::cos(0.2 * static_cast<double>(i)));
    }
    wire.assign(kernel->x_wire_bytes(level), std::byte{});
    kernel->pack_x(x, level, wire.data());
    kernel->unpack_x(wire, level, back);
    ASSERT_EQ(back.size(), x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      EXPECT_EQ(x[i], back[i]) << "X" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Kernels, ExpansionLcoCodec,
                         ::testing::Values("laplace", "yukawa"));

struct EnginePlumbing {
  DualTree tree;
  InteractionLists lists;
  Dag dag;
};

EnginePlumbing make_plumbing(Kernel& kernel, int localities, Method method) {
  Rng rng(5);
  const std::size_t n = 3000;
  const auto src = generate_points(Distribution::kCube, n, rng);
  const auto tgt = generate_points(Distribution::kCube, n, rng);
  EnginePlumbing p{build_dual_tree(src, tgt, 30, localities), {}, {}};
  kernel.setup(p.tree.source.domain().size,
               std::max(p.tree.source.max_level(),
                        p.tree.target.max_level()) + 1, 3);
  p.lists = build_lists(p.tree);
  DagBuildConfig dcfg;
  dcfg.method = method;
  p.dag = build_dag(p.tree, p.lists, kernel, dcfg, localities);
  return p;
}

// The DAG's per-edge byte model and the engine's wire format are the same
// arithmetic: a parcel carrying one edge costs the fixed headers plus
// exactly DagEdge::bytes, for every operator that can cross localities.
TEST(ExpansionLcoWireFormat, PerEdgeBytesAgreeWithDagModel) {
  auto kernel = make_kernel("laplace");
  const EnginePlumbing p = make_plumbing(*kernel, 4, Method::kFmmAdvanced);
  ThreadExecutor ex(4, 1);
  DagEngine engine(p.dag, p.tree, *kernel, ex, {});

  constexpr std::uint64_t kParcelFixed = 8 + 4 + 8;  // header + id + section
  constexpr std::uint64_t kContribFixed = 8;         // header
  std::size_t remote_checked = 0;
  for (NodeIndex ni = 0; ni < p.dag.nodes.size(); ++ni) {
    const DagNode& n = p.dag.nodes[ni];
    for (std::uint32_t e = n.first_edge; e < n.first_edge + n.num_edges;
         ++e) {
      const DagEdge& edge = p.dag.edges[e];
      if (p.dag.nodes[edge.target].locality == n.locality) continue;
      if (DagEngine::source_computed(edge.op)) {
        EXPECT_EQ(engine.contribution_wire_bytes(edge),
                  kContribFixed + edge.bytes);
      } else {
        EXPECT_EQ(engine.parcel_wire_bytes(
                      ni, std::span<const std::uint32_t>(&e, 1)),
                  kParcelFixed + edge.bytes)
            << "op " << static_cast<int>(edge.op);
      }
      ++remote_checked;
    }
  }
  EXPECT_GT(remote_checked, 0u);
  EXPECT_EQ(p.dag.stats().remote_edges, remote_checked);
}

// Every byte handed to Executor::send is a serialized wire byte — the
// engine's wire-format count and the transport's count must agree exactly,
// in both real and cost-only mode, and with coalescing on or off.
TEST(ExpansionLcoWireFormat, TransportBytesEqualSerializedBytes) {
  Rng rng(11);
  const std::size_t n = 4000;
  const auto src = generate_points(Distribution::kCube, n, rng);
  const auto tgt = generate_points(Distribution::kCube, n, rng);
  const auto q = generate_charges(n, rng);

  EvalConfig cfg;
  cfg.localities = 3;
  cfg.cores_per_locality = 2;
  cfg.threshold = 40;
  Evaluator eval(make_kernel("laplace"), cfg);
  const EvalResult r = eval.evaluate(src, q, tgt);
  ASSERT_GT(r.parcels_sent, 0u);
  EXPECT_GT(r.wire_bytes, 0u);
  EXPECT_EQ(r.wire_bytes, r.bytes_sent);

  EvalConfig off = cfg;
  off.coalesce.enabled = false;
  Evaluator eval_off(make_kernel("laplace"), off);
  const EvalResult r_off = eval_off.evaluate(src, q, tgt);
  EXPECT_EQ(r_off.wire_bytes, r_off.bytes_sent);
  EXPECT_EQ(r_off.wire_bytes, r.wire_bytes);

  // The simulator exchanges the same parcels over the same wire format.
  SimConfig sim;
  sim.localities = 3;
  sim.cores_per_locality = 2;
  const SimResult s = eval.simulate(src, tgt, sim);
  EXPECT_EQ(s.wire_bytes, s.bytes_sent);
  EXPECT_EQ(s.wire_bytes, r.wire_bytes);
}

// Remote edges move data only as serialized parcels; deserialization and
// evaluation at the destination must reproduce the single-locality result
// to full precision.
TEST(ExpansionLcoEngine, MultiLocalityMatchesSingleLocalityTightly) {
  Rng rng(21);
  const std::size_t n = 3000;
  const auto src = generate_points(Distribution::kCube, n, rng);
  const auto tgt = generate_points(Distribution::kCube, n, rng);
  const auto q = generate_charges(n, rng);

  for (const char* kname : {"laplace", "yukawa"}) {
    EvalConfig one;
    one.localities = 1;
    one.cores_per_locality = 2;
    one.threshold = 30;
    Evaluator e1(make_kernel(kname, /*yukawa_lambda=*/2.0), one);
    const auto r1 = e1.evaluate(src, q, tgt);

    EvalConfig many = one;
    many.localities = 4;
    Evaluator e4(make_kernel(kname, /*yukawa_lambda=*/2.0), many);
    const auto r4 = e4.evaluate(src, q, tgt);
    ASSERT_GT(r4.parcels_sent, 0u);

    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(r1.potentials[i], r4.potentials[i],
                  1e-12 * std::max(1.0, std::abs(r1.potentials[i])))
          << kname << " target " << i;
    }
  }
}

// The LCO network is rebuilt per evaluation: iterating with new charges on
// the same prepared geometry must stay exact (trigger-once state does not
// leak across runs).
TEST(ExpansionLcoEngine, RepeatedEvaluationsStayConsistent) {
  Rng rng(31);
  const std::size_t n = 1500;
  const auto src = generate_points(Distribution::kSphere, n, rng);
  const auto tgt = generate_points(Distribution::kSphere, n, rng);

  EvalConfig cfg;
  cfg.localities = 2;
  cfg.cores_per_locality = 2;
  cfg.threshold = 30;
  Evaluator eval(make_kernel("laplace"), cfg);
  eval.prepare(src, tgt);
  for (int round = 0; round < 3; ++round) {
    const auto q = generate_charges(n, rng);
    const EvalResult r = eval.evaluate_prepared(q);
    EXPECT_EQ(r.wire_bytes, r.bytes_sent);
    const auto ref = direct_sum(eval.kernel(), src, q, tgt);
    double num = 0, den = 0;
    for (std::size_t i = 0; i < n; ++i) {
      num += (r.potentials[i] - ref[i]) * (r.potentials[i] - ref[i]);
      den += ref[i] * ref[i];
    }
    EXPECT_LT(std::sqrt(num / den), 1e-3) << "round " << round;
  }
}

}  // namespace
}  // namespace amtfmm
