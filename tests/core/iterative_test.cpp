#include <gtest/gtest.h>

#include "core/evaluator.hpp"
#include "geom/distributions.hpp"

namespace amtfmm {
namespace {

/// The iterative-use API of section IV: prepare once, evaluate the same DAG
/// repeatedly with fresh charges.  Results must match the one-shot path
/// exactly, and the kernel math must be stateless across evaluations.
TEST(IterativeUse, PreparedEvaluationsMatchOneShot) {
  Rng rng(41);
  const std::size_t n = 3000;
  const auto src = generate_points(Distribution::kCube, n, rng);
  const auto tgt = generate_points(Distribution::kCube, n, rng);

  EvalConfig cfg;
  cfg.threshold = 30;
  cfg.localities = 2;
  cfg.cores_per_locality = 2;
  Evaluator eval(make_kernel("laplace"), cfg);
  EXPECT_FALSE(eval.prepared());
  eval.prepare(src, tgt);
  EXPECT_TRUE(eval.prepared());

  for (int iter = 0; iter < 3; ++iter) {
    Rng qr(100 + static_cast<std::uint64_t>(iter));
    const auto q = generate_charges(n, qr);
    const EvalResult prepared = eval.evaluate_prepared(q);

    Evaluator fresh(make_kernel("laplace"), cfg);
    const EvalResult oneshot = fresh.evaluate(src, q, tgt);
    ASSERT_EQ(prepared.potentials.size(), oneshot.potentials.size());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(prepared.potentials[i], oneshot.potentials[i],
                  1e-10 * std::abs(oneshot.potentials[i]) + 1e-13)
          << "iteration " << iter << " target " << i;
    }
  }
}

TEST(IterativeUse, LinearInCharges) {
  // Doubling every charge must exactly double every potential when the
  // same prepared DAG is reused (pure linear pipeline).
  Rng rng(43);
  const std::size_t n = 2500;
  const auto src = generate_points(Distribution::kSphere, n, rng);
  const auto tgt = generate_points(Distribution::kSphere, n, rng);
  const auto q = generate_charges(n, rng);
  std::vector<double> q2(q);
  for (auto& v : q2) v *= 2.0;

  EvalConfig cfg;
  cfg.threshold = 40;
  Evaluator eval(make_kernel("yukawa", 2.0), cfg);
  eval.prepare(src, tgt);
  const auto r1 = eval.evaluate_prepared(q);
  const auto r2 = eval.evaluate_prepared(q2);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(r2.potentials[i], 2.0 * r1.potentials[i],
                1e-10 * std::abs(r1.potentials[i]) + 1e-13);
  }
}

TEST(IterativeUse, RequiresPrepare) {
  EvalConfig cfg;
  Evaluator eval(make_kernel("laplace"), cfg);
  const std::vector<double> q(10, 1.0);
  EXPECT_THROW(eval.evaluate_prepared(q), config_error);
}

}  // namespace
}  // namespace amtfmm
