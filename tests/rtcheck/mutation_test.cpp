// Mutation (fault-injection) validation: each seeded mutation reintroduces
// a specific ordering/locking bug in the real runtime code, and the model
// checker must (a) detect it in its canonical scenario, (b) reproduce the
// identical failure from the recorded schedule, and (c) stay green on the
// same scenario without the mutation — proving the detectors key on the bug,
// not on noise.

#include <gtest/gtest.h>

#include "rtcheck/harness.hpp"

namespace amtfmm::rtcheck {
namespace {

constexpr Mutation kAll[] = {
    Mutation::kStealBottomLoadRelaxed,   Mutation::kLcoSetInputNoLock,
    Mutation::kCoalescerCountAfterInsert, Mutation::kGasResolveRelaxed,
    Mutation::kCountersCountEarly,
};

RtReport run(const Scenario& sc, const RtOptions& opt) {
  Harness h(sc, opt);
  return h.run();
}

TEST(RtCheckMutation, EachMutationIsDetectedByItsCanonicalScenario) {
  for (Mutation m : kAll) {
    const Scenario* sc = find_scenario(mutation_scenario(m));
    ASSERT_NE(sc, nullptr);
    RtOptions opt;
    opt.mode = RtOptions::Mode::kDfs;
    opt.mutation = m;
    const RtReport rep = run(*sc, opt);
    EXPECT_TRUE(rep.failed) << mutation_name(m) << " not detected";
    EXPECT_FALSE(rep.schedule.empty()) << mutation_name(m);
  }
}

TEST(RtCheckMutation, DetectionReplaysDeterministically) {
  for (Mutation m : kAll) {
    const Scenario* sc = find_scenario(mutation_scenario(m));
    ASSERT_NE(sc, nullptr);
    RtOptions opt;
    opt.mode = RtOptions::Mode::kDfs;
    opt.mutation = m;
    const RtReport first = run(*sc, opt);
    ASSERT_TRUE(first.failed) << mutation_name(m);

    RtOptions replay;
    replay.mode = RtOptions::Mode::kReplay;
    replay.mutation = m;
    replay.replay_schedule = first.schedule;
    const RtReport again = run(*sc, replay);
    EXPECT_TRUE(again.failed) << mutation_name(m);
    EXPECT_FALSE(again.diverged) << mutation_name(m);
    EXPECT_EQ(again.message, first.message) << mutation_name(m);
  }
}

TEST(RtCheckMutation, FailingScheduleIsCleanWithoutTheMutation) {
  for (Mutation m : kAll) {
    const Scenario* sc = find_scenario(mutation_scenario(m));
    ASSERT_NE(sc, nullptr);
    RtOptions opt;
    opt.mode = RtOptions::Mode::kDfs;
    opt.mutation = m;
    const RtReport first = run(*sc, opt);
    ASSERT_TRUE(first.failed) << mutation_name(m);

    // Same schedule, fixed code: the bug is the mutation, not the scenario.
    // (The pick sequence may diverge harmlessly — removing the mutation can
    // change which schedule points exist — but nothing may be flagged.)
    RtOptions replay;
    replay.mode = RtOptions::Mode::kReplay;
    replay.replay_schedule = first.schedule;
    const RtReport clean = run(*sc, replay);
    EXPECT_FALSE(clean.failed) << mutation_name(m) << ": " << clean.message;
  }
}

TEST(RtCheckMutation, PctFindsAndSeedReplaysAMutation) {
  const Scenario* sc =
      find_scenario(mutation_scenario(Mutation::kLcoSetInputNoLock));
  ASSERT_NE(sc, nullptr);
  RtOptions opt;
  opt.mode = RtOptions::Mode::kPct;
  opt.mutation = Mutation::kLcoSetInputNoLock;
  opt.seed = 1;
  opt.pct_executions = 128;
  const RtReport rep = run(*sc, opt);
  ASSERT_TRUE(rep.failed);

  RtOptions one = opt;
  one.seed = rep.seed;
  one.pct_executions = 1;
  const RtReport again = run(*sc, one);
  ASSERT_TRUE(again.failed);
  EXPECT_EQ(again.message, rep.message);
  EXPECT_EQ(again.schedule, rep.schedule);
}

}  // namespace
}  // namespace amtfmm::rtcheck
