#include <gtest/gtest.h>

#include <string>

#include "rtcheck/harness.hpp"

namespace amtfmm::rtcheck {
namespace {

RtReport run_dfs(const std::string& name, int preempt = 2) {
  const Scenario* sc = find_scenario(name);
  EXPECT_NE(sc, nullptr) << name;
  RtOptions opt;
  opt.mode = RtOptions::Mode::kDfs;
  opt.preemption_bound = preempt;
  Harness h(*sc, opt);
  return h.run();
}

TEST(RtCheck, DequeStealVsPopExploresExhaustivelyAndPasses) {
  const RtReport rep = run_dfs("deque.steal_vs_pop");
  EXPECT_FALSE(rep.failed) << rep.message;
  EXPECT_TRUE(rep.complete);
  // The bounded space is nontrivial: dozens of distinct schedules, not a
  // single serialized run.
  EXPECT_GE(rep.executions, 50u);
}

TEST(RtCheck, LcoTriggerOnceExploresExhaustivelyAndPasses) {
  const RtReport rep = run_dfs("lco.trigger_once");
  EXPECT_FALSE(rep.failed) << rep.message;
  EXPECT_TRUE(rep.complete);
  EXPECT_GE(rep.executions, 20u);
}

TEST(RtCheck, AllDfsFeasibleScenariosPassClean) {
  for (const Scenario& sc : all_scenarios()) {
    if (!sc.dfs_feasible || sc.expect_fail) continue;
    const RtReport rep = run_dfs(sc.name);
    EXPECT_FALSE(rep.failed) << sc.name << ": " << rep.message;
    EXPECT_TRUE(rep.complete) << sc.name;
    EXPECT_GE(rep.executions, 1u) << sc.name;
  }
}

TEST(RtCheck, PctOnlyScenariosPassUnderRandomizedExploration) {
  for (const Scenario& sc : all_scenarios()) {
    if (sc.dfs_feasible || sc.expect_fail) continue;
    RtOptions opt;
    opt.mode = RtOptions::Mode::kPct;
    opt.seed = 42;
    opt.pct_executions = 64;
    Harness h(sc, opt);
    const RtReport rep = h.run();
    EXPECT_FALSE(rep.failed) << sc.name << ": " << rep.message;
    EXPECT_EQ(rep.executions, 64u) << sc.name;
  }
}

TEST(RtCheck, SelfCheckDoubleFireIsFlagged) {
  const RtReport rep = run_dfs("selfcheck.double_fire");
  ASSERT_TRUE(rep.failed);
  EXPECT_NE(rep.message.find("fired twice"), std::string::npos) << rep.message;
  EXPECT_FALSE(rep.schedule.empty());
}

TEST(RtCheck, SelfCheckPlainRaceIsFlagged) {
  const RtReport rep = run_dfs("selfcheck.plain_race");
  ASSERT_TRUE(rep.failed);
  EXPECT_NE(rep.message.find("data race"), std::string::npos) << rep.message;
}

TEST(RtCheck, SelfCheckDeadlockIsFlagged) {
  const RtReport rep = run_dfs("selfcheck.deadlock");
  ASSERT_TRUE(rep.failed);
  EXPECT_NE(rep.message.find("deadlock"), std::string::npos) << rep.message;
}

TEST(RtCheck, FailureScheduleReplaysDeterministically) {
  const RtReport first = run_dfs("selfcheck.plain_race");
  ASSERT_TRUE(first.failed);
  RtOptions opt;
  opt.mode = RtOptions::Mode::kReplay;
  opt.replay_schedule = first.schedule;
  Harness h(*find_scenario("selfcheck.plain_race"), opt);
  const RtReport again = h.run();
  ASSERT_TRUE(again.failed);
  EXPECT_FALSE(again.diverged);
  EXPECT_EQ(again.message, first.message);
  EXPECT_EQ(again.schedule, first.schedule);
}

TEST(RtCheck, PctSeedAloneReplaysAFailure) {
  // Find the deadlock under PCT, then re-run only the failing seed.
  const Scenario* sc = find_scenario("selfcheck.deadlock");
  RtOptions opt;
  opt.mode = RtOptions::Mode::kPct;
  opt.seed = 1;
  opt.pct_executions = 256;
  Harness h(*sc, opt);
  const RtReport rep = h.run();
  ASSERT_TRUE(rep.failed);
  RtOptions one = opt;
  one.seed = rep.seed;
  one.pct_executions = 1;
  Harness h2(*sc, one);
  const RtReport again = h2.run();
  ASSERT_TRUE(again.failed);
  EXPECT_EQ(again.message, rep.message);
  EXPECT_EQ(again.schedule, rep.schedule);
}

TEST(RtCheck, ScheduleFormatRoundTrips) {
  const std::vector<int> s = {0, 1, 1, 0, 2};
  EXPECT_EQ(parse_schedule(format_schedule(s)), s);
  EXPECT_TRUE(parse_schedule("").empty());
}

TEST(RtCheck, EveryMutationNamesARegisteredScenario) {
  for (Mutation m :
       {Mutation::kStealBottomLoadRelaxed, Mutation::kLcoSetInputNoLock,
        Mutation::kCoalescerCountAfterInsert, Mutation::kGasResolveRelaxed,
        Mutation::kCountersCountEarly}) {
    const Scenario* sc = find_scenario(mutation_scenario(m));
    ASSERT_NE(sc, nullptr) << mutation_name(m);
    EXPECT_TRUE(sc->dfs_feasible) << mutation_name(m);
    EXPECT_EQ(mutation_from_name(mutation_name(m)), m);
  }
}

TEST(RtCheck, FailureTraceRecordsTheRacingSteps) {
  const RtReport rep = run_dfs("selfcheck.plain_race");
  ASSERT_TRUE(rep.failed);
  ASSERT_FALSE(rep.trace.empty());
  bool saw_write = false;
  for (const RtTraceEvent& e : rep.trace) {
    if (e.kind == SyncKind::kPlainWrite && e.label == "shared-int") {
      saw_write = true;
    }
  }
  EXPECT_TRUE(saw_write);
}

}  // namespace
}  // namespace amtfmm::rtcheck
