// MUST NOT COMPILE under -Wthread-safety -Werror=thread-safety: reads a
// GUARDED_BY member with no lock held.  If this translation unit ever
// compiles, the thread-safety analysis has been disarmed (see
// tests/static/CMakeLists.txt).

#include "runtime/sync_hook.hpp"

namespace {

class Counter {
 public:
  void add(int v) {
    amtfmm::SyncLockGuard lk(mu_);
    total_ += v;
  }
  int total_unlocked() {
    return total_;  // expected-error: reading total_ requires holding mu_
  }

 private:
  amtfmm::SyncMutex mu_;
  int total_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.add(1);
  return c.total_unlocked();
}
