// MUST NOT COMPILE under -Wthread-safety -Werror=thread-safety: calls a
// REQUIRES(mu_) helper without holding mu_ — the compiler-checked version
// of the runtime's "*_locked() helpers assume the lock" convention.  If
// this translation unit ever compiles, the analysis has been disarmed
// (see tests/static/CMakeLists.txt).

#include "runtime/sync_hook.hpp"

namespace {

class Counter {
 public:
  void add_locked(int v) REQUIRES(mu_) { total_ += v; }
  void add_unlocked(int v) {
    add_locked(v);  // expected-error: calling add_locked requires mu_
  }

 private:
  amtfmm::SyncMutex mu_;
  int total_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.add_unlocked(1);
  return 0;
}
