// Positive control for the thread-safety negative tests: correct locking
// through the sync_hook shim must compile warning-free under
// -Wthread-safety -Werror=thread-safety.  If this breaks, the REJECT
// cases next door prove nothing.

#include "runtime/sync_hook.hpp"

namespace {

class Counter {
 public:
  void add(int v) {
    amtfmm::SyncLockGuard lk(mu_);
    total_ += v;
  }
  int total() {
    amtfmm::SyncUniqueLock lk(mu_);
    return total_;
  }
  void add_locked(int v) REQUIRES(mu_) { total_ += v; }
  void add_two() {
    mu_.lock();
    add_locked(2);
    mu_.unlock();
  }

 private:
  amtfmm::SyncMutex mu_;
  int total_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.add(1);
  c.add_two();
  return c.total() == 3 ? 0 : 1;
}
