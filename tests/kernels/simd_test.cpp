// Parity tests for the SIMD batch-kernel layer: every ISA variant the host
// supports must agree with the scalar reference to 1e-12 across both
// potentials, at odd batch sizes (masked-tail coverage), and at
// coincident-point edge cases.  The rotation-M2L inner loops (zaxpy /
// zrdot) get the same treatment, both directly and end-to-end through
// m2l_acc.

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "kernels/kernel.hpp"
#include "kernels/simd/simd.hpp"
#include "support/rng.hpp"

namespace amtfmm {
namespace {

constexpr double kTol = 1e-12;

// Batch sizes chosen to hit every tail residue of the 2/4/8-wide variants,
// including the sub-width sizes 1..3.
const std::size_t kSizes[] = {1, 2, 3, 5, 8, 13, 31, 33, 64, 67};

/// Restores the entry ISA on scope exit so test order doesn't leak state.
class IsaGuard {
 public:
  IsaGuard() : saved_(simd::active_isa()) {}
  ~IsaGuard() { simd::set_active_isa(saved_); }

 private:
  simd::Isa saved_;
};

struct Batch {
  std::vector<double> tx, ty, tz, sx, sy, sz, sq;
  std::vector<double> phi, ax, ay, az;

  Batch(std::size_t nt, std::size_t ns, unsigned seed, bool coincident) {
    Rng rng(seed);
    auto fill = [&](std::vector<double>& v, std::size_t n) {
      v.resize(n);
      for (auto& x : v) x = rng.uniform(-1.0, 1.0);
    };
    fill(tx, nt);
    fill(ty, nt);
    fill(tz, nt);
    fill(sx, ns);
    fill(sy, ns);
    fill(sz, ns);
    fill(sq, ns);
    if (coincident) {
      // Duplicate a target into the sources (including into a tail lane)
      // so the r == 0 masking is exercised in body and tail positions.
      sx[0] = tx[nt / 2];
      sy[0] = ty[nt / 2];
      sz[0] = tz[nt / 2];
      sx[ns - 1] = tx[0];
      sy[ns - 1] = ty[0];
      sz[ns - 1] = tz[0];
    }
    phi.assign(nt, 0.0);
    ax.assign(nt, 0.0);
    ay.assign(nt, 0.0);
    az.assign(nt, 0.0);
  }

  simd::P2PBatch view(bool grad) {
    simd::P2PBatch b;
    b.tx = tx.data();
    b.ty = ty.data();
    b.tz = tz.data();
    b.nt = tx.size();
    b.sx = sx.data();
    b.sy = sy.data();
    b.sz = sz.data();
    b.sq = sq.data();
    b.ns = sx.size();
    b.phi = phi.data();
    if (grad) {
      b.ax = ax.data();
      b.ay = ay.data();
      b.az = az.data();
    }
    return b;
  }
};

void expect_batches_match(const Batch& got, const Batch& want,
                          const char* what) {
  for (std::size_t i = 0; i < want.phi.size(); ++i) {
    EXPECT_NEAR(got.phi[i], want.phi[i], kTol) << what << " phi[" << i << "]";
    EXPECT_NEAR(got.ax[i], want.ax[i], kTol) << what << " ax[" << i << "]";
    EXPECT_NEAR(got.ay[i], want.ay[i], kTol) << what << " ay[" << i << "]";
    EXPECT_NEAR(got.az[i], want.az[i], kTol) << what << " az[" << i << "]";
  }
}

void run_p2p(Batch& b, bool yukawa, bool grad) {
  const simd::P2PBatch v = b.view(grad);
  if (yukawa) {
    simd::p2p_yukawa(v, 1.7);
  } else {
    simd::p2p_laplace(v);
  }
}

class SimdP2PTest : public ::testing::TestWithParam<bool> {};

TEST_P(SimdP2PTest, EveryIsaMatchesScalarAcrossSizesAndGradients) {
  const bool yukawa = GetParam();
  IsaGuard guard;
  unsigned seed = yukawa ? 100 : 200;
  for (const std::size_t ns : kSizes) {
    for (const bool grad : {false, true}) {
      for (const bool coincident : {false, true}) {
        ++seed;
        const std::size_t nt = (ns % 3) + 3;
        Batch ref(nt, ns, seed, coincident);
        ASSERT_TRUE(simd::set_active_isa(simd::Isa::kScalar));
        run_p2p(ref, yukawa, grad);
        for (const simd::Isa isa : simd::supported_isas()) {
          Batch got(nt, ns, seed, coincident);
          ASSERT_TRUE(simd::set_active_isa(isa));
          run_p2p(got, yukawa, grad);
          expect_batches_match(got, ref, simd::to_string(isa));
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Kernels, SimdP2PTest, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "yukawa" : "laplace";
                         });

TEST(SimdP2P, EmptyBatchesAreNoOps) {
  IsaGuard guard;
  std::vector<double> one{0.5}, phi{0.0};
  for (const simd::Isa isa : simd::supported_isas()) {
    ASSERT_TRUE(simd::set_active_isa(isa));
    simd::P2PBatch no_targets;
    no_targets.sx = no_targets.sy = no_targets.sz = no_targets.sq =
        one.data();
    no_targets.ns = 1;
    simd::p2p_laplace(no_targets);
    simd::p2p_yukawa(no_targets, 1.0);

    simd::P2PBatch no_sources;
    no_sources.tx = no_sources.ty = no_sources.tz = one.data();
    no_sources.nt = 1;
    no_sources.phi = phi.data();
    simd::p2p_laplace(no_sources);
    simd::p2p_yukawa(no_sources, 1.0);
    EXPECT_EQ(phi[0], 0.0) << simd::to_string(isa);
  }
}

TEST(SimdComplexOps, ZaxpyAndZrdotMatchScalarAcrossSizes) {
  IsaGuard guard;
  Rng rng(7);
  for (const std::size_t n : kSizes) {
    std::vector<cdouble> x(n);
    std::vector<double> r(n);
    std::vector<cdouble> y0(n);
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
      r[i] = rng.uniform(-1.0, 1.0);
      y0[i] = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
    }
    const cdouble a{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};

    ASSERT_TRUE(simd::set_active_isa(simd::Isa::kScalar));
    std::vector<cdouble> y_ref = y0;
    simd::zaxpy(a, x.data(), y_ref.data(), n);
    const cdouble d_ref = simd::zrdot(x.data(), r.data(), n);

    for (const simd::Isa isa : simd::supported_isas()) {
      ASSERT_TRUE(simd::set_active_isa(isa));
      std::vector<cdouble> y = y0;
      simd::zaxpy(a, x.data(), y.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(std::abs(y[i] - y_ref[i]), 0.0, kTol)
            << simd::to_string(isa) << " n=" << n << " i=" << i;
      }
      const cdouble d = simd::zrdot(x.data(), r.data(), n);
      EXPECT_NEAR(std::abs(d - d_ref), 0.0, kTol)
          << simd::to_string(isa) << " n=" << n;
    }
  }
}

// End-to-end rotation-M2L parity: the full m2l_acc (rotate, axial
// translate, rotate back) must agree across ISAs for both kernels.
TEST(SimdM2L, RotationM2LMatchesScalarForEveryIsa) {
  IsaGuard guard;
  for (const char* name : {"laplace", "yukawa"}) {
    auto k = make_kernel(name, /*yukawa_lambda=*/2.0);
    k->setup(1.0, 3, 3);
    const double w = 1.0 / 8;
    const Vec3 cs{0.3125, 0.3125, 0.3125};
    const Vec3 ct = cs + Vec3{2 * w, 0, w};
    Rng rng(11);
    std::vector<Vec3> pts;
    std::vector<double> q;
    for (int i = 0; i < 24; ++i) {
      pts.push_back(cs + Vec3{rng.uniform(-0.5, 0.5), rng.uniform(-0.5, 0.5),
                              rng.uniform(-0.5, 0.5)} *
                             w);
      q.push_back(rng.uniform(-1.0, 1.0));
    }
    CoeffVec m;
    k->s2m(pts, q, cs, 3, m);

    ASSERT_TRUE(simd::set_active_isa(simd::Isa::kScalar));
    CoeffVec l_ref(k->l_count(3), cdouble{});
    k->m2l_acc(m, cs, ct, 3, l_ref);

    for (const simd::Isa isa : simd::supported_isas()) {
      ASSERT_TRUE(simd::set_active_isa(isa));
      CoeffVec l(k->l_count(3), cdouble{});
      k->m2l_acc(m, cs, ct, 3, l);
      ASSERT_EQ(l.size(), l_ref.size());
      for (std::size_t i = 0; i < l.size(); ++i) {
        // Laplace high-order coefficients reach O(1e4); 1e-12 is relative.
        const double scale = std::max(1.0, std::abs(l_ref[i]));
        EXPECT_NEAR(std::abs(l[i] - l_ref[i]), 0.0, kTol * scale)
            << name << " " << simd::to_string(isa) << " i=" << i;
      }
    }
  }
}

// The kernels' s2t_batch overrides must agree with the generic base-class
// fallback (per-pair direct()/direct_grad()), which is what non-SIMD
// kernels and unsupported platforms run.
TEST(SimdS2T, KernelBatchOverridesMatchBaseFallback) {
  IsaGuard guard;
  for (const char* name : {"laplace", "yukawa"}) {
    auto k = make_kernel(name, /*yukawa_lambda=*/1.3);
    k->setup(1.0, 3, 3);
    const bool grad = k->supports_gradient();
    Batch ref(5, 33, 42, /*coincident=*/true);
    k->Kernel::s2t_batch(ref.view(grad));  // base-class fallback
    for (const simd::Isa isa : simd::supported_isas()) {
      ASSERT_TRUE(simd::set_active_isa(isa));
      Batch got(5, 33, 42, /*coincident=*/true);
      k->s2t_batch(got.view(grad));
      expect_batches_match(got, ref, simd::to_string(isa));
    }
  }
}

TEST(SimdDispatch, NamesRoundTripAndUnsupportedIsRejected) {
  IsaGuard guard;
  for (int i = 0; i < simd::kNumIsas; ++i) {
    const auto isa = static_cast<simd::Isa>(i);
    simd::Isa parsed{};
    ASSERT_TRUE(simd::parse_isa(simd::to_string(isa), parsed));
    EXPECT_EQ(parsed, isa);
  }
  simd::Isa parsed{};
  EXPECT_FALSE(simd::parse_isa("sse9", parsed));

  // Scalar is always supported and always first in preference order.
  ASSERT_FALSE(simd::supported_isas().empty());
  EXPECT_EQ(simd::supported_isas().front(), simd::Isa::kScalar);
  EXPECT_TRUE(simd::isa_supported(simd::Isa::kScalar));

  for (int i = 0; i < simd::kNumIsas; ++i) {
    const auto isa = static_cast<simd::Isa>(i);
    if (simd::isa_supported(isa)) {
      EXPECT_TRUE(simd::set_active_isa(isa));
      EXPECT_EQ(simd::active_isa(), isa);
    } else {
      const simd::Isa before = simd::active_isa();
      EXPECT_FALSE(simd::set_active_isa(isa));
      EXPECT_EQ(simd::active_isa(), before);  // unchanged on rejection
    }
  }
}

}  // namespace
}  // namespace amtfmm
