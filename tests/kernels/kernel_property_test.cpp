#include <gtest/gtest.h>

#include <cmath>

#include "kernels/kernel.hpp"
#include "support/rng.hpp"

namespace amtfmm {
namespace {

constexpr int kLevel = 3;
constexpr double kW = 1.0 / 8;

std::vector<Vec3> box_points(const Vec3& c, int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec3> pts;
  for (int i = 0; i < n; ++i) {
    pts.push_back(c + Vec3{rng.uniform(-.5, .5), rng.uniform(-.5, .5),
                           rng.uniform(-.5, .5)} *
                          kW);
  }
  return pts;
}

class KernelProperties : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    kernel_ = make_kernel(GetParam(), 2.0);
    kernel_->setup(1.0, 5, 3);
  }
  std::unique_ptr<Kernel> kernel_;
};

/// Every operator is linear in the sources: expansions of q and 2q differ
/// by exactly a factor 2 all the way to the evaluated potential.
TEST_P(KernelProperties, OperatorsAreLinearInCharges) {
  const Vec3 cs{0.3125, 0.3125, 0.3125};
  const Vec3 ct = cs + Vec3{2 * kW, kW, 0};
  const auto pts = box_points(cs, 25, 3);
  std::vector<double> q(25), q2(25);
  Rng rng(4);
  for (int i = 0; i < 25; ++i) {
    q[static_cast<std::size_t>(i)] = rng.uniform(0.1, 1.0);
    q2[static_cast<std::size_t>(i)] = 2.0 * q[static_cast<std::size_t>(i)];
  }
  CoeffVec m1, m2;
  kernel_->s2m(pts, q, cs, kLevel, m1);
  kernel_->s2m(pts, q2, cs, kLevel, m2);
  for (std::size_t i = 0; i < m1.size(); ++i) {
    EXPECT_NEAR(std::abs(m2[i] - 2.0 * m1[i]), 0.0,
                1e-12 * (1.0 + std::abs(m1[i])));
  }
  CoeffVec l1(kernel_->l_count(kLevel), cdouble{});
  CoeffVec l2(kernel_->l_count(kLevel), cdouble{});
  kernel_->m2l_acc(m1, cs, ct, kLevel, l1);
  kernel_->m2l_acc(m2, cs, ct, kLevel, l2);
  const Vec3 t = ct + Vec3{0.2 * kW, -0.1 * kW, 0.3 * kW};
  EXPECT_NEAR(kernel_->l2t(l2, ct, kLevel, t), 2.0 * kernel_->l2t(l1, ct, kLevel, t),
              1e-9 * std::abs(kernel_->l2t(l1, ct, kLevel, t)) + 1e-14);
}

/// Superposition: the expansion of two charge sets equals the sum of their
/// individual expansions (the reduction the expansion LCOs rely on).
TEST_P(KernelProperties, ExpansionsSuperpose) {
  const Vec3 cs{0.3125, 0.3125, 0.3125};
  const auto pa = box_points(cs, 15, 5);
  const auto pb = box_points(cs, 10, 6);
  const std::vector<double> qa(15, 0.7), qb(10, 0.3);
  CoeffVec ma, mb;
  kernel_->s2m(pa, qa, cs, kLevel, ma);
  kernel_->s2m(pb, qb, cs, kLevel, mb);
  std::vector<Vec3> all = pa;
  all.insert(all.end(), pb.begin(), pb.end());
  std::vector<double> qall = qa;
  qall.insert(qall.end(), qb.begin(), qb.end());
  CoeffVec mall;
  kernel_->s2m(all, qall, cs, kLevel, mall);
  for (std::size_t i = 0; i < mall.size(); ++i) {
    EXPECT_NEAR(std::abs(mall[i] - (ma[i] + mb[i])), 0.0,
                1e-12 * (1.0 + std::abs(mall[i])));
  }
}

/// The kernel itself must be symmetric in source/target exchange
/// (potential kernels are), and decay monotonically with distance.
TEST_P(KernelProperties, KernelSymmetryAndDecay) {
  Rng rng(8);
  for (int trial = 0; trial < 20; ++trial) {
    const Vec3 a{rng.uniform(0, 1), rng.uniform(0, 1), rng.uniform(0, 1)};
    const Vec3 b{rng.uniform(0, 1), rng.uniform(0, 1), rng.uniform(0, 1)};
    EXPECT_DOUBLE_EQ(kernel_->direct(a, b), kernel_->direct(b, a));
  }
  const Vec3 s{0.5, 0.5, 0.5};
  double prev = 1e300;
  for (double r : {0.1, 0.2, 0.4, 0.8}) {
    const double v = kernel_->direct(s + Vec3{r, 0, 0}, s);
    EXPECT_LT(v, prev);
    EXPECT_GT(v, 0.0);
    prev = v;
  }
}

/// Conjugate symmetry of real-kernel expansions — the invariant behind the
/// 880-byte wire format.  The phase convention differs per basis: the
/// solid-harmonic (Laplace) bases carry (-1)^m, the gamma-weighted angular
/// (Yukawa) bases do not.
TEST_P(KernelProperties, ExpansionsAreConjugateSymmetric) {
  const bool condon = std::string(GetParam()) == "laplace";
  const Vec3 cs{0.3125, 0.3125, 0.3125};
  const auto pts = box_points(cs, 30, 9);
  const std::vector<double> q(30, 0.5);
  CoeffVec m;
  kernel_->s2m(pts, q, cs, kLevel, m);
  const int p = static_cast<int>(std::sqrt(static_cast<double>(m.size()))) - 1;
  for (int nn = 0; nn <= p; ++nn) {
    for (int mm = 1; mm <= nn; ++mm) {
      const cdouble expect = ((condon && (mm & 1)) ? -1.0 : 1.0) *
                             std::conj(m[sq_index(nn, mm)]);
      EXPECT_NEAR(std::abs(m[sq_index(nn, -mm)] - expect), 0.0,
                  1e-12 * (1.0 + std::abs(expect)))
          << "n=" << nn << " m=" << mm;
    }
  }
  // Hence the packed wire format round-trips losslessly.
  CoeffVec wire, back;
  pack_wire(p, m, wire);
  unpack_wire(p, wire, back, condon);
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_NEAR(std::abs(back[i] - m[i]), 0.0, 1e-13 * (1.0 + std::abs(m[i])));
  }
}

INSTANTIATE_TEST_SUITE_P(Kernels, KernelProperties,
                         ::testing::Values("laplace", "yukawa"));

TEST(KernelSizes, WireBytesMatchThePaperAtThreeDigits) {
  for (const char* name : {"laplace", "yukawa"}) {
    auto k = make_kernel(name, 2.0);
    k->setup(1.0, 5, 3);
    EXPECT_EQ(k->m_wire_bytes(3), 880u) << name;  // Table I M/L size
    EXPECT_EQ(k->l_wire_bytes(3), 880u) << name;
  }
}

TEST(KernelSizes, YukawaIntermediateShrinksWithDepthScaling) {
  // Scale variance: kappa * box_size falls with depth, so the quadrature
  // (and X length) changes per level — paper section V.A.
  auto k = make_kernel("yukawa", 8.0);
  k->setup(1.0, 6, 3);
  EXPECT_LT(k->x_count(0), k->x_count(6))
      << "strong screening at coarse levels must shorten the expansion";
  auto lap = make_kernel("laplace");
  lap->setup(1.0, 6, 3);
  EXPECT_EQ(lap->x_count(0), lap->x_count(6))
      << "Laplace is scale invariant: one quadrature for all levels";
}

}  // namespace
}  // namespace amtfmm
