#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "kernels/kernel.hpp"
#include "math/m2l_rotation.hpp"
#include "support/rng.hpp"

namespace amtfmm {
namespace {

constexpr double kDomain = 1.0;
constexpr int kMaxLevel = 3;
constexpr int kLevel = 3;
constexpr double kW = kDomain / 8;  // box size at kLevel

struct Ensemble {
  std::vector<Vec3> pts;
  std::vector<double> q;
};

Ensemble random_box_points(const Vec3& center, double size, int n,
                           std::uint64_t seed) {
  Rng rng(seed);
  Ensemble e;
  for (int i = 0; i < n; ++i) {
    e.pts.push_back(center + Vec3{rng.uniform(-0.5, 0.5) * size,
                                  rng.uniform(-0.5, 0.5) * size,
                                  rng.uniform(-0.5, 0.5) * size});
    e.q.push_back(rng.uniform(0.1, 1.0));
  }
  return e;
}

/// The 316 integer offsets with Chebyshev distance >= 2 that an M2L edge
/// can take between same-level boxes of an MAC-2 interaction list.
std::vector<Vec3> m2l_offsets() {
  std::vector<Vec3> out;
  for (int x = -3; x <= 3; ++x) {
    for (int y = -3; y <= 3; ++y) {
      for (int z = -3; z <= 3; ++z) {
        if (std::max({std::abs(x), std::abs(y), std::abs(z)}) < 2) continue;
        out.push_back(Vec3{static_cast<double>(x), static_cast<double>(y),
                           static_cast<double>(z)});
      }
    }
  }
  return out;
}

double max_abs(const CoeffVec& v) {
  double m = 0.0;
  for (const cdouble& c : v) m = std::max(m, std::abs(c));
  return m;
}

TEST(M2LRotationSet, CoversAll316WellSeparatedOffsets) {
  const M2LRotationSet set(9);
  const auto offsets = m2l_offsets();
  ASSERT_EQ(offsets.size(), 316u);
  for (const Vec3& o : offsets) {
    EXPECT_NE(set.find(o * kW, kW), nullptr)
        << "(" << o.x << ", " << o.y << ", " << o.z << ")";
  }
  // Adjacent, non-integer, and out-of-range translations fall back to the
  // naive path.
  EXPECT_EQ(set.find(Vec3{kW, 0, 0}, kW), nullptr);
  EXPECT_EQ(set.find(Vec3{0, 0, 0}, kW), nullptr);
  EXPECT_EQ(set.find(Vec3{2.5 * kW, 0, 0}, kW), nullptr);
  EXPECT_EQ(set.find(Vec3{4 * kW, 0, 0}, kW), nullptr);
}

// The rotation-based Laplace M2L is algebraically exact (rotations built
// from a bandlimited-exact quadrature, axial table in closed form), so it
// must agree with the dense double sum to rounding.
TEST(LaplaceM2LRotation, MatchesNaiveToMachinePrecision) {
  const auto offsets = m2l_offsets();
  const Vec3 cs{0.3125, 0.3125, 0.3125};
  for (int digits = 1; digits <= 3; ++digits) {  // p = 3, 6, 9
    auto k = make_kernel("laplace");
    k->setup(kDomain, kMaxLevel, digits);
    const Ensemble src = random_box_points(cs, kW, 40, 7u + digits);
    CoeffVec m;
    k->s2m(src.pts, src.q, cs, kLevel, m);
    for (const Vec3& o : offsets) {
      const Vec3 ct = cs + o * kW;
      CoeffVec naive(k->l_count(kLevel), cdouble{});
      k->set_m2l_mode(M2LMode::kNaive);
      k->m2l_acc(m, cs, ct, kLevel, naive);
      CoeffVec rotated(k->l_count(kLevel), cdouble{});
      k->set_m2l_mode(M2LMode::kRotation);
      k->m2l_acc(m, cs, ct, kLevel, rotated);
      const double tol = 1e-12 * (1.0 + max_abs(naive));
      for (std::size_t i = 0; i < naive.size(); ++i) {
        ASSERT_NEAR(std::abs(rotated[i] - naive[i]), 0.0, tol)
            << "p=" << 3 * digits << " offset (" << o.x << ", " << o.y << ", "
            << o.z << ") coeff " << i;
      }
    }
  }
}

// With a non-integer translation the rotation mode has no precomputed
// direction and must dispatch to the identical naive computation.
TEST(LaplaceM2LRotation, FallsBackToNaiveOffGrid) {
  auto k = make_kernel("laplace");
  k->setup(kDomain, kMaxLevel, 3);
  const Vec3 cs{0.3125, 0.3125, 0.3125};
  const Vec3 ct = cs + Vec3{2.37 * kW, 0.11 * kW, -1.02 * kW};
  const Ensemble src = random_box_points(cs, kW, 40, 11);
  CoeffVec m;
  k->s2m(src.pts, src.q, cs, kLevel, m);
  CoeffVec naive(k->l_count(kLevel), cdouble{});
  k->set_m2l_mode(M2LMode::kNaive);
  k->m2l_acc(m, cs, ct, kLevel, naive);
  CoeffVec rotated(k->l_count(kLevel), cdouble{});
  k->set_m2l_mode(M2LMode::kRotation);
  k->m2l_acc(m, cs, ct, kLevel, rotated);
  for (std::size_t i = 0; i < naive.size(); ++i) {
    ASSERT_EQ(rotated[i], naive[i]);
  }
}

// The naive Yukawa M2L is itself numerical (sphere sampling + projection
// with orientation-dependent aliasing at the working accuracy), so parity
// is only meaningful at the kernel's accuracy target eps = 10^{-digits-1},
// not at machine precision as for Laplace.
TEST(YukawaM2LRotation, AgreesWithNaiveProjection) {
  const auto offsets = m2l_offsets();
  const Vec3 cs{0.3125, 0.3125, 0.3125};
  for (int digits = 2; digits <= 3; ++digits) {
    const double eps = std::pow(10.0, -digits - 1);
    auto k = make_kernel("yukawa", /*yukawa_lambda=*/2.0);
    k->setup(kDomain, kMaxLevel, digits);
    const Ensemble src = random_box_points(cs, kW, 40, 23u + digits);
    CoeffVec m;
    k->s2m(src.pts, src.q, cs, kLevel, m);
    for (const Vec3& o : offsets) {
      const Vec3 ct = cs + o * kW;
      CoeffVec naive(k->l_count(kLevel), cdouble{});
      k->set_m2l_mode(M2LMode::kNaive);
      k->m2l_acc(m, cs, ct, kLevel, naive);
      CoeffVec rotated(k->l_count(kLevel), cdouble{});
      k->set_m2l_mode(M2LMode::kRotation);
      k->m2l_acc(m, cs, ct, kLevel, rotated);
      const double tol = 20.0 * eps * (1.0 + max_abs(naive));
      for (std::size_t i = 0; i < naive.size(); ++i) {
        ASSERT_NEAR(std::abs(rotated[i] - naive[i]), 0.0, tol)
            << "p=" << 3 * digits << " offset (" << o.x << ", " << o.y << ", "
            << o.z << ") coeff " << i;
      }
    }
  }
}

// Independent ground truth: S2M -> rotated M2L -> L2T against direct
// summation, for every direction class.  This catches errors that the
// naive-parity test can't (both paths sharing a wrong convention).
TEST(YukawaM2LRotation, MatchesDirectSummation) {
  const auto offsets = m2l_offsets();
  const Vec3 cs{0.3125, 0.3125, 0.3125};
  const int digits = 3;
  const double eps = std::pow(10.0, -digits);
  auto k = make_kernel("yukawa", /*yukawa_lambda=*/2.0);
  k->setup(kDomain, kMaxLevel, digits);
  const Ensemble src = random_box_points(cs, kW, 40, 31);
  CoeffVec m;
  k->s2m(src.pts, src.q, cs, kLevel, m);
  Rng rng(5);
  for (const Vec3& o : offsets) {
    const Vec3 ct = cs + o * kW;
    CoeffVec local(k->l_count(kLevel), cdouble{});
    k->m2l_acc(m, cs, ct, kLevel, local);  // default mode: rotation
    for (int trial = 0; trial < 4; ++trial) {
      const Vec3 t = ct + Vec3{rng.uniform(-0.5, 0.5) * kW,
                               rng.uniform(-0.5, 0.5) * kW,
                               rng.uniform(-0.5, 0.5) * kW};
      double direct = 0.0;
      for (std::size_t i = 0; i < src.pts.size(); ++i) {
        direct += src.q[i] * k->direct(t, src.pts[i]);
      }
      const double fmm = k->l2t(local, ct, kLevel, t);
      ASSERT_NEAR(fmm, direct, 5.0 * eps * (1.0 + std::abs(direct)))
          << "offset (" << o.x << ", " << o.y << ", " << o.z << ")";
    }
  }
}

// Same ground-truth closure for Laplace.
TEST(LaplaceM2LRotation, MatchesDirectSummation) {
  const auto offsets = m2l_offsets();
  const Vec3 cs{0.3125, 0.3125, 0.3125};
  const int digits = 3;
  const double eps = std::pow(10.0, -digits);
  auto k = make_kernel("laplace");
  k->setup(kDomain, kMaxLevel, digits);
  const Ensemble src = random_box_points(cs, kW, 40, 37);
  CoeffVec m;
  k->s2m(src.pts, src.q, cs, kLevel, m);
  Rng rng(6);
  for (const Vec3& o : offsets) {
    const Vec3 ct = cs + o * kW;
    CoeffVec local(k->l_count(kLevel), cdouble{});
    k->m2l_acc(m, cs, ct, kLevel, local);
    for (int trial = 0; trial < 4; ++trial) {
      const Vec3 t = ct + Vec3{rng.uniform(-0.5, 0.5) * kW,
                               rng.uniform(-0.5, 0.5) * kW,
                               rng.uniform(-0.5, 0.5) * kW};
      double direct = 0.0;
      for (std::size_t i = 0; i < src.pts.size(); ++i) {
        direct += src.q[i] * k->direct(t, src.pts[i]);
      }
      const double fmm = k->l2t(local, ct, kLevel, t);
      ASSERT_NEAR(fmm, direct, 5.0 * eps * (1.0 + std::abs(direct)))
          << "offset (" << o.x << ", " << o.y << ", " << o.z << ")";
    }
  }
}

}  // namespace
}  // namespace amtfmm
