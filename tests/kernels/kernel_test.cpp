#include <gtest/gtest.h>

#include <cmath>

#include "kernels/kernel.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace amtfmm {
namespace {

constexpr double kDomain = 1.0;
constexpr int kMaxLevel = 3;
constexpr int kLevel = 3;          // working level for the operator tests
constexpr double kW = kDomain / 8; // box size at that level
constexpr int kDigits = 3;

struct Ensemble {
  std::vector<Vec3> pts;
  std::vector<double> q;
};

Ensemble random_box_points(const Vec3& center, double size, int n,
                           std::uint64_t seed) {
  Rng rng(seed);
  Ensemble e;
  for (int i = 0; i < n; ++i) {
    e.pts.push_back(center + Vec3{rng.uniform(-0.5, 0.5) * size,
                                  rng.uniform(-0.5, 0.5) * size,
                                  rng.uniform(-0.5, 0.5) * size});
    e.q.push_back(rng.uniform(0.1, 1.0));
  }
  return e;
}

double direct_sum(const Kernel& k, const Ensemble& src, const Vec3& t) {
  double phi = 0.0;
  for (std::size_t i = 0; i < src.pts.size(); ++i) {
    phi += src.q[i] * k.direct(t, src.pts[i]);
  }
  return phi;
}

class KernelOps : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    kernel_ = make_kernel(GetParam(), /*yukawa_lambda=*/2.0);
    kernel_->setup(kDomain, kMaxLevel, kDigits);
  }
  std::unique_ptr<Kernel> kernel_;
};

TEST_P(KernelOps, S2MThenM2TMatchesDirect) {
  const Vec3 cs{0.3125, 0.3125, 0.3125};  // a level-3 box center
  const Ensemble src = random_box_points(cs, kW, 40, 1);
  CoeffVec m;
  kernel_->s2m(src.pts, src.q, cs, kLevel, m);
  EXPECT_EQ(m.size(), kernel_->m_count(kLevel));
  Rng rng(2);
  for (int trial = 0; trial < 8; ++trial) {
    const Vec3 t = cs + Vec3{rng.uniform(-1, 1), rng.uniform(-1, 1),
                             rng.uniform(-1, 1)} *
                            (2.5 * kW);
    if ((t - cs).norm() < 1.8 * kW) continue;  // stay well separated
    const double exact = direct_sum(*kernel_, src, t);
    EXPECT_NEAR(kernel_->m2t(m, cs, kLevel, t), exact,
                5e-3 * std::abs(exact) + 1e-12);
  }
}

TEST_P(KernelOps, M2MPreservesTheFarField) {
  const Vec3 cs{0.3125, 0.3125, 0.3125};
  const Vec3 cp{0.375, 0.375, 0.375};  // parent (level-2) center
  const Ensemble src = random_box_points(cs, kW, 40, 3);
  CoeffVec m, mp(kernel_->m_count(kLevel - 1), cdouble{});
  kernel_->s2m(src.pts, src.q, cs, kLevel, m);
  kernel_->m2m_acc(m, cs, cp, kLevel, mp);
  Rng rng(4);
  for (int trial = 0; trial < 8; ++trial) {
    Vec3 dir{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
    const Vec3 t = cp + dir * (5.0 * kW / std::max(dir.norm(), 1e-9));
    const double exact = direct_sum(*kernel_, src, t);
    EXPECT_NEAR(kernel_->m2t(mp, cp, kLevel - 1, t), exact,
                5e-3 * std::abs(exact) + 1e-12);
  }
}

TEST_P(KernelOps, M2LThenL2TMatchesDirect) {
  const Vec3 cs{0.3125, 0.3125, 0.3125};
  for (const Vec3 off : {Vec3{2, 0, 0}, Vec3{-2, 1, 1}, Vec3{3, -2, 2},
                         Vec3{0, 0, -3}, Vec3{2, 2, 2}}) {
    const Vec3 ct = cs + off * kW;
    const Ensemble src = random_box_points(cs, kW, 30, 5);
    CoeffVec m, l(kernel_->l_count(kLevel), cdouble{});
    kernel_->s2m(src.pts, src.q, cs, kLevel, m);
    kernel_->m2l_acc(m, cs, ct, kLevel, l);
    Rng rng(6);
    for (int trial = 0; trial < 5; ++trial) {
      const Vec3 t = ct + Vec3{rng.uniform(-0.5, 0.5), rng.uniform(-0.5, 0.5),
                               rng.uniform(-0.5, 0.5)} *
                              kW;
      const double exact = direct_sum(*kernel_, src, t);
      EXPECT_NEAR(kernel_->l2t(l, ct, kLevel, t), exact,
                  5e-3 * std::abs(exact) + 1e-12)
          << "offset " << off.x << "," << off.y << "," << off.z;
    }
  }
}

TEST_P(KernelOps, S2LThenL2TMatchesDirect) {
  const Vec3 ct{0.3125, 0.3125, 0.3125};
  // A coarser far leaf: sources at 2.5 box widths.
  const Ensemble src = random_box_points(ct + Vec3{2.5, 0.5, -1} * kW,
                                         2 * kW, 25, 7);
  CoeffVec l(kernel_->l_count(kLevel), cdouble{});
  kernel_->s2l_acc(src.pts, src.q, ct, kLevel, l);
  Rng rng(8);
  for (int trial = 0; trial < 5; ++trial) {
    const Vec3 t = ct + Vec3{rng.uniform(-0.5, 0.5), rng.uniform(-0.5, 0.5),
                             rng.uniform(-0.5, 0.5)} *
                            kW;
    const double exact = direct_sum(*kernel_, src, t);
    EXPECT_NEAR(kernel_->l2t(l, ct, kLevel, t), exact,
                5e-3 * std::abs(exact) + 1e-12);
  }
}

TEST_P(KernelOps, L2LRefinesTheLocalExpansion) {
  const Vec3 cp{0.375, 0.375, 0.375};            // level-2 parent
  const Vec3 cc = cp + Vec3{-1, -1, -1} * (kW / 2);  // a level-3 child
  const Ensemble src = random_box_points(cp + Vec3{5, 1, 0} * kW, 2 * kW, 25, 9);
  CoeffVec lp(kernel_->l_count(kLevel - 1), cdouble{});
  kernel_->s2l_acc(src.pts, src.q, cp, kLevel - 1, lp);
  CoeffVec lc(kernel_->l_count(kLevel), cdouble{});
  kernel_->l2l_acc(lp, cp, cc, kLevel, lc);
  Rng rng(10);
  for (int trial = 0; trial < 5; ++trial) {
    const Vec3 t = cc + Vec3{rng.uniform(-0.5, 0.5), rng.uniform(-0.5, 0.5),
                             rng.uniform(-0.5, 0.5)} *
                            kW;
    const double exact = direct_sum(*kernel_, src, t);
    EXPECT_NEAR(kernel_->l2t(lc, cc, kLevel, t), exact,
                5e-3 * std::abs(exact) + 1e-12);
  }
}

/// The advanced path, direct form: M->I at the source box, one diagonal
/// I->I translation to the target box, I->L, L->T — for offsets in every
/// direction class.
TEST_P(KernelOps, MergeAndShiftDirectChainMatchesM2L) {
  if (!kernel_->supports_merge_and_shift()) GTEST_SKIP();
  const Vec3 cs{0.4375, 0.4375, 0.4375};
  struct Case {
    Vec3 off;
    Axis d;
  };
  // Direction = dominant axis of (target - source).
  const Case cases[] = {
      {{0, 1, 2}, Axis::kPlusZ},   {{1, -1, 3}, Axis::kPlusZ},
      {{-1, 0, -2}, Axis::kMinusZ}, {{0, 2, 1}, Axis::kPlusY},
      {{1, -3, 0}, Axis::kMinusY}, {{2, 1, -1}, Axis::kPlusX},
      {{-2, 0, 1}, Axis::kMinusX}, {{3, 1, 1}, Axis::kPlusX},
  };
  for (const Case& c : cases) {
    const Vec3 ct = cs + c.off * kW;
    const Ensemble src = random_box_points(cs, kW, 30, 11);
    CoeffVec m;
    kernel_->s2m(src.pts, src.q, cs, kLevel, m);
    CoeffVec x;
    kernel_->m2i(m, kLevel, c.d, x);
    CoeffVec xin(kernel_->x_count(kLevel), cdouble{});
    kernel_->i2i_acc(x, c.d, ct - cs, kLevel, xin);
    CoeffVec l(kernel_->l_count(kLevel), cdouble{});
    kernel_->i2l_acc(xin, c.d, kLevel, l);
    Rng rng(12);
    for (int trial = 0; trial < 4; ++trial) {
      const Vec3 t = ct + Vec3{rng.uniform(-0.5, 0.5), rng.uniform(-0.5, 0.5),
                               rng.uniform(-0.5, 0.5)} *
                              kW;
      const double exact = direct_sum(*kernel_, src, t);
      EXPECT_NEAR(kernel_->l2t(l, ct, kLevel, t), exact,
                  8e-3 * std::abs(exact) + 1e-12)
          << "offset " << c.off.x << "," << c.off.y << "," << c.off.z;
    }
  }
}

/// The merge path: source X hops to the target's PARENT center (merge leg)
/// and then down to the target child (shift leg).  Must equal the direct
/// single translation, which it does algebraically for diagonal operators.
TEST_P(KernelOps, MergeViaParentEqualsDirectTranslation) {
  if (!kernel_->supports_merge_and_shift()) GTEST_SKIP();
  const Vec3 cs{0.4375, 0.4375, 0.4375};
  const Vec3 ct = cs + Vec3{1, 0, 2} * kW;          // +z class
  const Vec3 cparent = ct + Vec3{1, 1, 1} * (kW / 2);
  const Ensemble src = random_box_points(cs, kW, 20, 13);
  CoeffVec m;
  kernel_->s2m(src.pts, src.q, cs, kLevel, m);
  CoeffVec x;
  kernel_->m2i(m, kLevel, Axis::kPlusZ, x);

  CoeffVec direct_x(kernel_->x_count(kLevel), cdouble{});
  kernel_->i2i_acc(x, Axis::kPlusZ, ct - cs, kLevel, direct_x);

  CoeffVec via_parent(kernel_->x_count(kLevel), cdouble{});
  kernel_->i2i_acc(x, Axis::kPlusZ, cparent - cs, kLevel, via_parent);
  CoeffVec at_child(kernel_->x_count(kLevel), cdouble{});
  kernel_->i2i_acc(via_parent, Axis::kPlusZ, ct - cparent, kLevel, at_child);

  for (std::size_t i = 0; i < direct_x.size(); ++i) {
    EXPECT_NEAR(std::abs(at_child[i] - direct_x[i]), 0.0,
                1e-11 * (1.0 + std::abs(direct_x[i])));
  }
}

INSTANTIATE_TEST_SUITE_P(Kernels, KernelOps,
                         ::testing::Values("laplace", "yukawa"));

TEST(LaplaceGradients, MatchDirectDifferentiation) {
  auto k = make_kernel("laplace");
  k->setup(kDomain, kMaxLevel, kDigits);
  ASSERT_TRUE(k->supports_gradient());
  const Vec3 s{0.2, 0.3, 0.4}, t{0.7, 0.1, 0.9};
  const Vec3 g = k->direct_grad(t, s);
  const double h = 1e-6;
  EXPECT_NEAR(g.x, (k->direct(t + Vec3{h, 0, 0}, s) - k->direct(t - Vec3{h, 0, 0}, s)) / (2 * h), 1e-6);
  EXPECT_NEAR(g.z, (k->direct(t + Vec3{0, 0, h}, s) - k->direct(t - Vec3{0, 0, h}, s)) / (2 * h), 1e-6);

  // l2t_grad against finite differences of l2t.
  const Vec3 ct{0.3125, 0.3125, 0.3125};
  const Ensemble src = random_box_points(ct + Vec3{3, 0, 1} * kW, 2 * kW, 15, 14);
  CoeffVec l(k->l_count(kLevel), cdouble{});
  k->s2l_acc(src.pts, src.q, ct, kLevel, l);
  const Vec3 x = ct + Vec3{0.01, -0.02, 0.03};
  const Vec3 gl = k->l2t_grad(l, ct, kLevel, x);
  auto phi = [&](const Vec3& p) { return k->l2t(l, ct, kLevel, p); };
  EXPECT_NEAR(gl.x, (phi(x + Vec3{h, 0, 0}) - phi(x - Vec3{h, 0, 0})) / (2 * h), 1e-4);
  EXPECT_NEAR(gl.y, (phi(x + Vec3{0, h, 0}) - phi(x - Vec3{0, h, 0})) / (2 * h), 1e-4);
  EXPECT_NEAR(gl.z, (phi(x + Vec3{0, 0, h}) - phi(x - Vec3{0, 0, h})) / (2 * h), 1e-4);
}

TEST(CountingKernel, EveryOperatorPreservesTheCount) {
  auto k = make_kernel("counting");
  k->setup(1.0, 4, 3);
  const std::vector<Vec3> pts{{0.1, 0.1, 0.1}, {0.2, 0.2, 0.2}, {0.3, 0.1, 0.2}};
  const std::vector<double> q{1.0, 1.0, 1.0};
  CoeffVec m;
  k->s2m(pts, q, {0.15, 0.15, 0.15}, 3, m);
  EXPECT_DOUBLE_EQ(m[0].real(), 3.0);
  CoeffVec mp(1, cdouble{});
  k->m2m_acc(m, {}, {}, 3, mp);
  CoeffVec x;
  k->m2i(mp, 3, Axis::kPlusY, x);
  CoeffVec xin(1, cdouble{});
  k->i2i_acc(x, Axis::kPlusY, {0, 0.5, 0}, 3, xin);
  CoeffVec l(1, cdouble{});
  k->i2l_acc(xin, Axis::kPlusY, 3, l);
  CoeffVec lc(1, cdouble{});
  k->l2l_acc(l, {}, {}, 4, lc);
  EXPECT_DOUBLE_EQ(k->l2t(lc, {}, 4, {0.9, 0.9, 0.9}), 3.0);
  EXPECT_DOUBLE_EQ(k->m2t(mp, {}, 3, {0.9, 0.9, 0.9}), 3.0);
}

TEST(KernelFactory, RejectsUnknownNames) {
  EXPECT_THROW(make_kernel("helmholtz"), config_error);
}

}  // namespace
}  // namespace amtfmm
