#include <gtest/gtest.h>

#include <cmath>

#include "math/solid.hpp"
#include "math/special.hpp"
#include "support/rng.hpp"

namespace amtfmm {
namespace {

Vec3 random_unit(Rng& rng) {
  const double ct = rng.uniform(-1, 1);
  const double st = std::sqrt(1 - ct * ct);
  const double phi = rng.uniform(0, 6.283185307179586);
  return {st * std::cos(phi), st * std::sin(phi), ct};
}

/// 1/|x-y| = sum conj(R_n^m(y)) S_n^m(x) for |y| < |x| (the multipole
/// expansion identity the whole Laplace kernel rests on).
TEST(SolidHarmonics, MultipoleExpansionIdentity) {
  Rng rng(7);
  const int p = 24;
  for (int trial = 0; trial < 10; ++trial) {
    const Vec3 y = random_unit(rng) * 0.25;
    const Vec3 x = random_unit(rng) * 2.0;
    CoeffVec r, s;
    regular_solid(p, y, 1.0, r);
    irregular_solid(p, x, 1.0, s);
    cdouble acc{};
    for (std::size_t i = 0; i < r.size(); ++i) acc += std::conj(r[i]) * s[i];
    const double exact = 1.0 / (x - y).norm();
    EXPECT_NEAR(acc.real(), exact, 1e-12 * exact);
    EXPECT_NEAR(acc.imag(), 0.0, 1e-12);
  }
}

/// R_n^m(a+b) = sum_{j,k} R_j^k(a) R_{n-j}^{m-k}(b) — exact for all n <= p.
TEST(SolidHarmonics, RegularAdditionTheorem) {
  Rng rng(11);
  const int p = 6;
  const Vec3 a = random_unit(rng) * 0.7;
  const Vec3 b = random_unit(rng) * 1.3;
  CoeffVec ra, rb, rab;
  regular_solid(p, a, 1.0, ra);
  regular_solid(p, b, 1.0, rb);
  regular_solid(p, a + b, 1.0, rab);
  for (int n = 0; n <= p; ++n) {
    for (int m = -n; m <= n; ++m) {
      cdouble acc{};
      for (int j = 0; j <= n; ++j) {
        for (int k = -j; k <= j; ++k) {
          const int n2 = n - j, m2 = m - k;
          if (m2 < -n2 || m2 > n2) continue;
          acc += ra[sq_index(j, k)] * rb[sq_index(n2, m2)];
        }
      }
      EXPECT_NEAR(std::abs(acc - rab[sq_index(n, m)]), 0.0, 1e-12)
          << "n=" << n << " m=" << m;
    }
  }
}

/// S_v^u(x-a) = sum_{j,k} conj(R_j^k(a)) S_{v+j}^{u+k}(x), |a| < |x|.
TEST(SolidHarmonics, IrregularShiftTheorem) {
  Rng rng(13);
  const int p = 22;
  const Vec3 a = random_unit(rng) * 0.15;
  const Vec3 x = random_unit(rng) * 2.0;
  CoeffVec ra, sx, sxa;
  regular_solid(p, a, 1.0, ra);
  irregular_solid(p, x, 1.0, sx);
  const int pv = 3;  // check low orders; tail decays as (|a|/|x|)^(p-v)
  irregular_solid(pv, x - a, 1.0, sxa);
  for (int v = 0; v <= pv; ++v) {
    for (int u = -v; u <= v; ++u) {
      cdouble acc{};
      for (int j = 0; j + v <= p; ++j) {
        for (int k = -j; k <= j; ++k) {
          const int n2 = v + j, m2 = u + k;
          if (m2 < -n2 || m2 > n2) continue;
          acc += std::conj(ra[sq_index(j, k)]) * sx[sq_index(n2, m2)];
        }
      }
      const double mag = std::abs(sxa[sq_index(v, u)]) + 1.0;
      EXPECT_NEAR(std::abs(acc - sxa[sq_index(v, u)]), 0.0, 1e-10 * mag)
          << "v=" << v << " u=" << u;
    }
  }
}

TEST(SolidHarmonics, ScaledBasesMatchUnscaled) {
  Rng rng(17);
  const int p = 8;
  const Vec3 v = random_unit(rng) * 0.8;
  const double s = 0.37;
  CoeffVec r1, rs, i1, is;
  regular_solid(p, v, 1.0, r1);
  regular_solid(p, v, s, rs);
  irregular_solid(p, v, 1.0, i1);
  irregular_solid(p, v, s, is);
  for (int n = 0; n <= p; ++n) {
    for (int m = -n; m <= n; ++m) {
      EXPECT_NEAR(std::abs(rs[sq_index(n, m)] -
                           r1[sq_index(n, m)] / std::pow(s, n)),
                  0.0, 1e-12 * std::abs(rs[sq_index(n, m)]) + 1e-15);
      EXPECT_NEAR(std::abs(is[sq_index(n, m)] -
                           i1[sq_index(n, m)] * std::pow(s, n + 1)),
                  0.0, 1e-12 * std::abs(is[sq_index(n, m)]) + 1e-15);
    }
  }
}

TEST(SolidHarmonics, EvaluatorsMatchDirectSums) {
  Rng rng(19);
  const int p = 9;
  const double scale = 0.5;
  // Build a multipole expansion of a few charges, evaluate far away.
  std::vector<Vec3> src;
  std::vector<double> q;
  for (int i = 0; i < 5; ++i) {
    src.push_back(random_unit(rng) * rng.uniform(0.0, 0.3));
    q.push_back(rng.uniform(-1, 1));
  }
  CoeffVec mcoef(sq_count(p), cdouble{});
  CoeffVec r;
  for (std::size_t i = 0; i < src.size(); ++i) {
    regular_solid(p, src[i], scale, r);
    for (std::size_t j = 0; j < r.size(); ++j) mcoef[j] += q[i] * std::conj(r[j]);
  }
  const Vec3 x = random_unit(rng) * 2.5;
  double exact = 0.0;
  for (std::size_t i = 0; i < src.size(); ++i) exact += q[i] / (x - src[i]).norm();
  EXPECT_NEAR(eval_irregular(p, mcoef, x, scale), exact, 2e-9 * std::abs(exact) + 1e-12);

  // Gradient against finite differences.
  const double h = 1e-6;
  const Vec3 g = grad_irregular(p, mcoef, x, scale);
  auto phi = [&](const Vec3& pt) { return eval_irregular(p, mcoef, pt, scale); };
  EXPECT_NEAR(g.x, (phi(x + Vec3{h, 0, 0}) - phi(x - Vec3{h, 0, 0})) / (2 * h), 1e-5);
  EXPECT_NEAR(g.y, (phi(x + Vec3{0, h, 0}) - phi(x - Vec3{0, h, 0})) / (2 * h), 1e-5);
  EXPECT_NEAR(g.z, (phi(x + Vec3{0, 0, h}) - phi(x - Vec3{0, 0, h})) / (2 * h), 1e-5);
}

TEST(SolidHarmonics, LocalEvaluatorAndGradient) {
  Rng rng(23);
  const int p = 12;
  const double scale = 0.8;
  // Build a local expansion from a far charge: L_j^k = q (-1)^j S_j^k(c - p)
  // with the scale algebra of the kernels (L-hat = (-1)^j S-hat / scale).
  const Vec3 far = random_unit(rng) * 3.0;
  const double q = 1.7;
  CoeffVec shat;
  irregular_solid(p, -far, scale, shat);  // c - p with c at origin
  CoeffVec lcoef(sq_count(p));
  for (int j = 0; j <= p; ++j) {
    for (int m = -j; m <= j; ++m) {
      lcoef[sq_index(j, m)] =
          q * ((j & 1) ? -1.0 : 1.0) * shat[sq_index(j, m)] / scale;
    }
  }
  const Vec3 x = random_unit(rng) * 0.3;
  const double exact = q / (x - far).norm();
  EXPECT_NEAR(eval_conj_regular(p, lcoef, x, scale), exact, 1e-8 * exact);

  const Vec3 g = grad_conj_regular(p, lcoef, x, scale);
  const Vec3 d = x - far;
  const Vec3 gexact = d * (-q / std::pow(d.norm(), 3));
  EXPECT_NEAR(g.x, gexact.x, 1e-6);
  EXPECT_NEAR(g.y, gexact.y, 1e-6);
  EXPECT_NEAR(g.z, gexact.z, 1e-6);
}

TEST(WireFormat, PackUnpackRoundTrip) {
  Rng rng(29);
  const int p = 9;
  CoeffVec full(sq_count(p));
  // Conjugate-symmetric coefficients, as produced by real kernels.
  for (int n = 0; n <= p; ++n) {
    for (int m = 0; m <= n; ++m) {
      const cdouble v{rng.uniform(-1, 1), m == 0 ? 0.0 : rng.uniform(-1, 1)};
      full[sq_index(n, m)] = v;
      if (m > 0) full[sq_index(n, -m)] = ((m & 1) ? -1.0 : 1.0) * std::conj(v);
    }
  }
  CoeffVec wire, back;
  pack_wire(p, full, wire);
  EXPECT_EQ(wire.size(), wire_count(p));
  EXPECT_EQ(wire_bytes(9), 880u);  // the paper's Table I M/L node size
  unpack_wire(p, wire, back);
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_EQ(full[i], back[i]) << i;
  }
}

}  // namespace
}  // namespace amtfmm
