#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "math/bessel.hpp"
#include "math/gauss.hpp"
#include "math/special.hpp"
#include "math/sphere.hpp"
#include "support/rng.hpp"

namespace amtfmm {
namespace {

TEST(Factorial, KnownValues) {
  EXPECT_DOUBLE_EQ(factorial(0), 1.0);
  EXPECT_DOUBLE_EQ(factorial(5), 120.0);
  EXPECT_DOUBLE_EQ(factorial(10), 3628800.0);
  EXPECT_DOUBLE_EQ(double_factorial_odd(0), 1.0);
  EXPECT_DOUBLE_EQ(double_factorial_odd(1), 1.0);   // 1!!
  EXPECT_DOUBLE_EQ(double_factorial_odd(3), 15.0);  // 5!!
}

TEST(Legendre, MatchesClosedFormsInsideUnitInterval) {
  std::vector<double> t;
  for (double x : {-0.9, -0.3, 0.0, 0.4, 0.99}) {
    legendre_table(4, x, t);
    const double s = std::sqrt(1.0 - x * x);
    EXPECT_NEAR(t[tri_index(0, 0)], 1.0, 1e-14);
    EXPECT_NEAR(t[tri_index(1, 0)], x, 1e-14);
    EXPECT_NEAR(t[tri_index(1, 1)], s, 1e-14);
    EXPECT_NEAR(t[tri_index(2, 0)], 0.5 * (3 * x * x - 1), 1e-14);
    EXPECT_NEAR(t[tri_index(2, 1)], 3 * x * s, 1e-13);
    EXPECT_NEAR(t[tri_index(2, 2)], 3 * (1 - x * x), 1e-13);
    EXPECT_NEAR(t[tri_index(3, 0)], 0.5 * (5 * x * x * x - 3 * x), 1e-13);
  }
}

TEST(Legendre, ArgumentAboveOneUsesHyperbolicBranch) {
  // P_1^1(x) = sqrt(x^2-1), P_2^2(x) = 3 (x^2 - 1) for x > 1.
  std::vector<double> t;
  legendre_table(2, 2.0, t);
  EXPECT_NEAR(t[tri_index(1, 1)], std::sqrt(3.0), 1e-13);
  EXPECT_NEAR(t[tri_index(2, 2)], 9.0, 1e-12);
  EXPECT_NEAR(t[tri_index(2, 0)], 5.5, 1e-12);
}

TEST(GaussLegendre, IntegratesPolynomialsExactly) {
  const Quadrature q = gauss_legendre(8);
  // int_{-1}^{1} x^k dx
  for (int k = 0; k <= 15; ++k) {
    double sum = 0.0;
    for (std::size_t i = 0; i < q.x.size(); ++i) sum += q.w[i] * std::pow(q.x[i], k);
    const double exact = (k % 2 == 0) ? 2.0 / (k + 1) : 0.0;
    EXPECT_NEAR(sum, exact, 1e-13) << "degree " << k;
  }
}

TEST(GaussLegendre, MappedInterval) {
  const Quadrature q = gauss_legendre(12, 0.0, 3.0);
  double sum = 0.0;
  for (std::size_t i = 0; i < q.x.size(); ++i) sum += q.w[i] * std::exp(-q.x[i]);
  EXPECT_NEAR(sum, 1.0 - std::exp(-3.0), 1e-12);
}

TEST(SphBessel, FirstKindMatchesClosedForm) {
  std::vector<double> i;
  for (double x : {0.1, 0.5, 2.0, 10.0}) {
    sph_bessel_i(6, x, i);
    EXPECT_NEAR(i[0], std::sinh(x) / x, 1e-13 * i[0]);
    EXPECT_NEAR(i[1], (x * std::cosh(x) - std::sinh(x)) / (x * x),
                1e-12 * std::abs(i[1]));
  }
  // Series limit near zero.
  sph_bessel_i(4, 1e-10, i);
  EXPECT_NEAR(i[0], 1.0, 1e-12);
  EXPECT_NEAR(i[2], 1e-20 / 15.0, 1e-26);
}

TEST(SphBessel, SecondKindMatchesClosedForm) {
  std::vector<double> k;
  for (double x : {0.1, 0.5, 2.0, 10.0}) {
    sph_bessel_k(6, x, k);
    const double k0 = 0.5 * std::numbers::pi * std::exp(-x) / x;
    EXPECT_NEAR(k[0], k0, 1e-13 * k0);
    EXPECT_NEAR(k[1], k0 * (1 + 1 / x), 1e-12 * k[1]);
  }
}

TEST(SphBessel, WronskianIdentity) {
  // i_n(x) k_{n+1}(x) + i_{n+1}(x) k_n(x) = pi / (2 x^2).
  std::vector<double> iv, kv;
  for (double x : {0.3, 1.0, 4.0, 20.0}) {
    sph_bessel_i(10, x, iv);
    sph_bessel_k(10, x, kv);
    const double expect = 0.5 * std::numbers::pi / (x * x);
    for (int n = 0; n < 10; ++n) {
      const double w = iv[static_cast<std::size_t>(n)] * kv[static_cast<std::size_t>(n + 1)] +
                       iv[static_cast<std::size_t>(n + 1)] * kv[static_cast<std::size_t>(n)];
      EXPECT_NEAR(w, expect, 1e-10 * expect) << "n=" << n << " x=" << x;
    }
  }
}

TEST(BesselJ, KnownValues) {
  std::vector<double> j;
  bessel_j(5, 1.0, j);
  EXPECT_NEAR(j[0], 0.7651976865579666, 1e-12);
  EXPECT_NEAR(j[1], 0.44005058574493355, 1e-12);
  bessel_j(5, 10.0, j);
  EXPECT_NEAR(j[0], -0.24593576445134835, 1e-12);
  EXPECT_NEAR(j[1], 0.04347274616886144, 1e-12);
}

TEST(SphereRule, ProjectionRecoversBandlimitedField) {
  const int p = 7;
  const SphereRule rule(p);
  Rng rng(99);
  CoeffVec coeffs(sq_count(p));
  for (auto& c : coeffs) c = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  // Sample the field sum c A_n^m and project back.
  std::vector<cdouble> samples(rule.size());
  CoeffVec basis;
  for (std::size_t q = 0; q < rule.size(); ++q) {
    angular_basis(p, rule.directions()[q], basis);
    cdouble acc{};
    for (std::size_t i = 0; i < coeffs.size(); ++i) acc += coeffs[i] * basis[i];
    samples[q] = acc;
  }
  CoeffVec rec;
  rule.project(samples, p, rec);
  // The raw basis is unnormalized (magnitudes up to (n+m)! ~ 1e10), so the
  // achievable absolute accuracy is machine epsilon times that scale.
  for (std::size_t i = 0; i < coeffs.size(); ++i) {
    EXPECT_NEAR(std::abs(rec[i] - coeffs[i]), 0.0, 1e-9) << "i=" << i;
  }
}

TEST(SphereRule, WeightsSumToSphereArea) {
  const SphereRule rule(5);
  double total = 0.0;
  for (double w : rule.weights()) total += w;
  EXPECT_NEAR(total, 4.0 * std::numbers::pi, 1e-12);
}

}  // namespace
}  // namespace amtfmm
