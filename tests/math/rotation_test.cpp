#include <gtest/gtest.h>

#include <cmath>

#include "math/rotation.hpp"
#include "math/special.hpp"
#include "math/sphere.hpp"
#include "support/rng.hpp"

namespace amtfmm {
namespace {

Vec3 random_unit(Rng& rng) {
  const double ct = rng.uniform(-1, 1);
  const double st = std::sqrt(1 - ct * ct);
  const double phi = rng.uniform(0, 6.283185307179586);
  return {st * std::cos(phi), st * std::sin(phi), ct};
}

TEST(AxisMaps, TakeAxisToPlusZ) {
  for (Axis d : kAllAxes) {
    const Mat3 q = axis_to_z(d);
    const Vec3 img = q * axis_vector(d);
    EXPECT_NEAR(img.x, 0.0, 1e-15);
    EXPECT_NEAR(img.y, 0.0, 1e-15);
    EXPECT_NEAR(img.z, 1.0, 1e-15);
    // Orthogonality: Q^T Q = I on basis vectors.
    const Mat3 qt = q.transpose();
    for (const Vec3& e : {Vec3{1, 0, 0}, Vec3{0, 1, 0}, Vec3{0, 0, 1}}) {
      const Vec3 r = qt * (q * e);
      EXPECT_NEAR((r - e).norm(), 0.0, 1e-15);
    }
  }
}

/// The numerically constructed per-degree matrices must satisfy
/// A_n^m(Q^T dir) = sum_{m'} E_{m,m'} A_n^{m'}(dir) — checked implicitly by
/// transforming a full expansion and evaluating both sides of
/// Phi'(x) = Phi(Q^T x) at random directions, with nontrivial basis weights
/// and both azimuthal orientations (s = +1 multipole-type, s = -1
/// local-type).
TEST(AngularTransform, FieldTransformationBothBasisKinds) {
  const int p = 7;
  Rng rng(5);
  CoeffVec coeffs(sq_count(p));
  for (auto& c : coeffs) c = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  std::vector<double> g(sq_count(p));
  for (int n = 0; n <= p; ++n)
    for (int m = -n; m <= n; ++m)
      g[sq_index(n, m)] = 1.0 / factorial(n + std::abs(m));

  for (Axis d : kAllAxes) {
    const Mat3 q = axis_to_z(d);
    const AngularTransform xf(p, q);
    for (int s : {1, -1}) {
      CoeffVec out;
      xf.apply(coeffs, g, s, out);
      auto eval = [&](const CoeffVec& c, const Vec3& dir) {
        CoeffVec basis;
        angular_basis(p, dir, basis);
        cdouble acc{};
        for (int n = 0; n <= p; ++n)
          for (int m = -n; m <= n; ++m)
            acc += c[sq_index(n, m)] * g[sq_index(n, m)] *
                   basis[sq_index(n, s * m)];
        return acc;
      };
      for (int trial = 0; trial < 5; ++trial) {
        const Vec3 dir = random_unit(rng);
        const cdouble lhs = eval(out, dir);
        const cdouble rhs = eval(coeffs, q.transpose() * dir);
        EXPECT_NEAR(std::abs(lhs - rhs), 0.0, 1e-10)
            << "axis " << static_cast<int>(d) << " s=" << s;
      }
    }
  }
}

TEST(AngularTransform, InverseComposesToIdentity) {
  const int p = 5;
  Rng rng(31);
  CoeffVec coeffs(sq_count(p));
  for (auto& c : coeffs) c = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  std::vector<double> g(sq_count(p), 1.0);
  for (Axis d : kAllAxes) {
    const Mat3 q = axis_to_z(d);
    const AngularTransform fwd(p, q);
    const AngularTransform inv(p, q.transpose());
    CoeffVec mid, back;
    fwd.apply(coeffs, g, 1, mid);
    inv.apply(mid, g, 1, back);
    for (std::size_t i = 0; i < coeffs.size(); ++i) {
      EXPECT_NEAR(std::abs(back[i] - coeffs[i]), 0.0, 1e-11);
    }
  }
}

}  // namespace
}  // namespace amtfmm
