#include <gtest/gtest.h>

#include <cmath>

#include "math/planewave.hpp"

namespace amtfmm {
namespace {

/// The generated quadrature must reproduce e^{-kappa R}/R to the target
/// tolerance over the full merge-and-shift geometry z in [1,4],
/// rho in [0, 4 sqrt 2] (box-size units).
void check_accuracy(double eps, double kappa) {
  const PlaneWaveQuadrature q = make_planewave_quadrature(eps, kappa);
  double worst = 0.0;
  for (double z : {1.0, 1.2, 1.7, 2.5, 3.3, 4.0}) {
    for (double rho : {0.0, 0.5, 1.5, 3.0, 4.5, 5.6568}) {
      for (double ang : {0.0, 0.7, 2.1}) {
        const double x = rho * std::cos(ang), y = rho * std::sin(ang);
        const double r = std::sqrt(z * z + rho * rho);
        const double exact = std::exp(-kappa * r) / r;
        const double got = planewave_eval(q, x, y, z);
        worst = std::max(worst, std::abs(got - exact));
      }
    }
  }
  // Absolute error tolerance: values of 1/R are O(1) at the near edge.
  EXPECT_LT(worst, 3.0 * eps) << "kappa=" << kappa << " eps=" << eps;
}

TEST(PlaneWave, LaplaceAccuracyThreeDigits) { check_accuracy(1e-4, 0.0); }
TEST(PlaneWave, LaplaceAccuracySixDigits) { check_accuracy(1e-7, 0.0); }
TEST(PlaneWave, YukawaAccuracyModerateScreening) { check_accuracy(1e-4, 1.0); }
TEST(PlaneWave, YukawaAccuracyStrongScreening) { check_accuracy(1e-4, 4.0); }

TEST(PlaneWave, ExtremeScreeningGivesEmptyQuadrature) {
  const PlaneWaveQuadrature q = make_planewave_quadrature(1e-4, 20.0);
  EXPECT_EQ(q.count, 0);
  EXPECT_EQ(q.total, 0u);
  // And the kernel really is negligible there: e^{-20}/1 ~ 2e-9.
  EXPECT_LT(std::exp(-20.0), 1e-4 * 0.01);
}

TEST(PlaneWave, NodeCountsAreReported) {
  const PlaneWaveQuadrature q = make_planewave_quadrature(1e-4, 0.0);
  EXPECT_GT(q.count, 0);
  EXPECT_EQ(q.lambda.size(), static_cast<std::size_t>(q.count));
  EXPECT_EQ(q.m_count.size(), static_cast<std::size_t>(q.count));
  std::size_t total = 0;
  for (int m : q.m_count) {
    EXPECT_GE(m, 4);
    EXPECT_EQ(m % 2, 0);
    total += static_cast<std::size_t>(m);
  }
  EXPECT_EQ(total, q.total);
}

}  // namespace
}  // namespace amtfmm
