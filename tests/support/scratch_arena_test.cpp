#include <gtest/gtest.h>

#include <thread>

#include "kernels/kernel.hpp"
#include "support/rng.hpp"
#include "support/scratch_arena.hpp"

namespace amtfmm {
namespace {

TEST(ScratchArena, LeaseReturnsBufferToThePool) {
  ScratchArena& arena = ScratchArena::local();
  const auto before = arena.stats();
  std::complex<double>* data = nullptr;
  {
    auto lease = arena.coeffs();
    lease->assign(128, {});
    data = lease->data();
  }
  {
    auto lease = arena.coeffs();  // must reuse the freed buffer
    lease->assign(128, {});
    EXPECT_EQ(lease->data(), data);
  }
  const auto after = arena.stats();
  EXPECT_GE(after.hits, before.hits + 1);
}

TEST(ScratchArena, ConcurrentLeasesGetDistinctBuffers) {
  ScratchArena& arena = ScratchArena::local();
  auto a = arena.coeffs();
  auto b = arena.coeffs();
  a->assign(16, {1.0, 0.0});
  b->assign(16, {2.0, 0.0});
  EXPECT_NE(a->data(), b->data());
  EXPECT_EQ((*a)[0].real(), 1.0);
  EXPECT_EQ((*b)[0].real(), 2.0);
}

// SoA batch buffers feed vector loads up to 64 bytes wide; the soa() pool
// guarantees cache-line alignment at every size, including after the
// grow-and-reallocate path.
TEST(ScratchArena, SoaBuffersAre64ByteAligned) {
  ScratchArena& arena = ScratchArena::local();
  for (std::size_t n : {1u, 7u, 64u, 1000u, 4096u}) {
    auto lease = arena.soa();
    lease->assign(n, 0.0);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(lease->data()) %
                  kSoaAlignment,
              0u)
        << "size " << n;
    lease->resize(4 * n);  // force reallocation; alignment must survive
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(lease->data()) %
                  kSoaAlignment,
              0u)
        << "resized from " << n;
  }
}

TEST(ScratchArena, SoaLeaseReturnsBufferToThePool) {
  ScratchArena& arena = ScratchArena::local();
  double* data = nullptr;
  {
    auto lease = arena.soa();
    lease->assign(256, 0.0);
    data = lease->data();
  }
  auto lease = arena.soa();  // must reuse the freed buffer
  lease->assign(256, 0.0);
  EXPECT_EQ(lease->data(), data);
}

TEST(ScratchArena, TotalFoldsInExitedThreads) {
  const auto before = ScratchArena::total();
  std::thread t([] {
    auto lease = ScratchArena::local().coeffs();  // one miss on this thread
    lease->assign(8, {});
  });
  t.join();
  const auto after = ScratchArena::total();
  EXPECT_GE(after.misses, before.misses + 1);
}

// The acceptance check for the arena conversion: after one warm-up call,
// repeated kernel operator invocations must be pool hits only — the arena
// miss counter (each miss is a heap allocation) stays flat.
TEST(ScratchArena, KernelOperatorsAreAllocationFreeInSteadyState) {
  for (const char* name : {"laplace", "yukawa"}) {
    auto k = make_kernel(name, /*yukawa_lambda=*/2.0);
    k->setup(1.0, 3, 3);
    const double w = 1.0 / 8;
    const Vec3 cs{0.3125, 0.3125, 0.3125};
    const Vec3 ct = cs + Vec3{2 * w, 0, w};
    Rng rng(3);
    std::vector<Vec3> pts;
    std::vector<double> q;
    for (int i = 0; i < 20; ++i) {
      pts.push_back(cs + Vec3{rng.uniform(-0.5, 0.5), rng.uniform(-0.5, 0.5),
                              rng.uniform(-0.5, 0.5)} *
                             w);
      q.push_back(1.0);
    }
    CoeffVec m(k->m_count(3)), l(k->l_count(3), cdouble{});
    auto sweep = [&] {
      k->s2m(pts, q, cs, 3, m);
      k->m2l_acc(m, cs, ct, 3, l);
      CoeffVec up(k->m_count(2), cdouble{});
      k->m2m_acc(m, cs, cs + Vec3{w / 2, w / 2, w / 2}, 3, up);
      CoeffVec down(k->l_count(3), cdouble{});
      k->l2l_acc(l, ct, ct + Vec3{w / 4, w / 4, w / 4}, 3, down);
      k->s2l_acc(pts, q, ct, 3, l);
      (void)k->m2t(m, cs, 3, ct);
      (void)k->l2t(l, ct, 3, ct + Vec3{0.1 * w, 0, 0});
      CoeffVec x;
      k->m2i(m, 3, Axis::kPlusZ, x);
      CoeffVec l2(k->l_count(3), cdouble{});
      k->i2l_acc(x, Axis::kPlusZ, 3, l2);
    };
    sweep();  // warm-up: grows the pools
    const auto warm = ScratchArena::local().stats();
    for (int i = 0; i < 50; ++i) sweep();
    const auto done = ScratchArena::local().stats();
    EXPECT_EQ(done.misses, warm.misses) << name;
    EXPECT_GT(done.hits, warm.hits) << name;
  }
}

}  // namespace
}  // namespace amtfmm
