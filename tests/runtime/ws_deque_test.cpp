#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <numeric>
#include <thread>
#include <vector>

#include "runtime/thread_executor.hpp"
#include "runtime/ws_deque.hpp"

namespace amtfmm {
namespace {

TEST(WsDeque, OwnerPopsLifoThievesStealFifo) {
  WsDeque<int> dq(8);
  int items[4] = {0, 1, 2, 3};
  for (int& i : items) ASSERT_TRUE(dq.push(&i));
  EXPECT_EQ(dq.steal(), &items[0]);  // oldest from the top
  EXPECT_EQ(dq.pop(), &items[3]);    // newest from the bottom
  EXPECT_EQ(dq.pop(), &items[2]);
  EXPECT_EQ(dq.steal(), &items[1]);
  EXPECT_EQ(dq.pop(), nullptr);
  EXPECT_EQ(dq.steal(), nullptr);
}

TEST(WsDeque, PushReportsFullAtCapacity) {
  WsDeque<int> dq(4);
  int items[5] = {};
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(dq.push(&items[i]));
  EXPECT_FALSE(dq.push(&items[4]));
  EXPECT_EQ(dq.steal(), &items[0]);  // freeing a slot re-enables push
  EXPECT_TRUE(dq.push(&items[4]));
}

TEST(WsDeque, IndicesWrapAroundTheRing) {
  WsDeque<int> dq(4);
  int items[64] = {};
  for (int round = 0; round < 16; ++round) {
    for (int i = 0; i < 4; ++i) ASSERT_TRUE(dq.push(&items[4 * round + i]));
    EXPECT_EQ(dq.steal(), &items[4 * round + 0]);
    EXPECT_EQ(dq.steal(), &items[4 * round + 1]);
    EXPECT_EQ(dq.pop(), &items[4 * round + 3]);
    EXPECT_EQ(dq.pop(), &items[4 * round + 2]);
  }
  EXPECT_EQ(dq.pop(), nullptr);
}

// Deterministic two-thread interleavings: a lockstep gate serializes the
// owner and the thief at operation granularity, so one specific order of
// deque operations replays identically on every run and its exact outcome
// can be asserted (which consumer got which item).  Instruction-level
// interleavings of the same races are explored exhaustively by the rtcheck
// model checker (deque.steal_vs_pop, deque.two_thieves); these tests pin
// the operation-level contract in the production build.
class Lockstep {
 public:
  /// Blocks until the shared step counter reaches `step`.
  void reach(int step) const {
    while (n_.load(std::memory_order_acquire) != step) {
      std::this_thread::yield();
    }
  }
  void advance() { n_.fetch_add(1, std::memory_order_release); }

 private:
  std::atomic<int> n_{0};
};

TEST(WsDequeInterleaving, StealBetweenPushAndPopReplaysDeterministically) {
  WsDeque<int> dq(8);
  int items[3] = {0, 1, 2};
  Lockstep gate;
  int* stolen = nullptr;

  std::thread thief([&] {
    gate.reach(1);  // after the owner pushed all three
    stolen = dq.steal();
    gate.advance();  // step 2: owner resumes popping
  });

  ASSERT_TRUE(dq.push(&items[0]));
  ASSERT_TRUE(dq.push(&items[1]));
  ASSERT_TRUE(dq.push(&items[2]));
  gate.advance();  // step 1: thief steals
  gate.reach(2);
  EXPECT_EQ(dq.pop(), &items[2]);
  EXPECT_EQ(dq.pop(), &items[1]);
  EXPECT_EQ(dq.pop(), nullptr);  // items[0] went to the thief
  thief.join();
  EXPECT_EQ(stolen, &items[0]);
}

TEST(WsDequeInterleaving, LastItemGoesToWhoeverMovesFirst) {
  // Order A: thief first — the owner's pop finds the deque empty.
  {
    WsDeque<int> dq(4);
    int item = 7;
    Lockstep gate;
    int* stolen = nullptr;
    std::thread thief([&] {
      gate.reach(1);
      stolen = dq.steal();
      gate.advance();
    });
    ASSERT_TRUE(dq.push(&item));
    gate.advance();
    gate.reach(2);
    EXPECT_EQ(dq.pop(), nullptr);
    thief.join();
    EXPECT_EQ(stolen, &item);
  }
  // Order B: owner first — the thief's steal finds the deque empty.
  {
    WsDeque<int> dq(4);
    int item = 7;
    Lockstep gate;
    int* stolen = nullptr;
    std::thread thief([&] {
      gate.reach(1);
      stolen = dq.steal();
      gate.advance();
    });
    ASSERT_TRUE(dq.push(&item));
    EXPECT_EQ(dq.pop(), &item);
    gate.advance();
    gate.reach(2);
    thief.join();
    EXPECT_EQ(stolen, nullptr);
  }
}

// One owner pushing/popping against several thieves; every item must be
// taken exactly once.  This is the test the sanitizer builds lean on
// (scripts/check.sh runs it under TSan): the pop/steal last-element race
// and the push/steal publication race both get exercised continuously
// because the deque is kept near-empty by the consumers.
TEST(WsDeque, StressOwnerAgainstThieves) {
  constexpr int kItems = 200000;
  constexpr int kThieves = 3;
  WsDeque<int> dq(256);
  std::vector<int> items(kItems);
  std::iota(items.begin(), items.end(), 0);
  std::vector<std::atomic<int>> taken(kItems);
  std::atomic<bool> done{false};

  auto record = [&](int* p) { taken[*p].fetch_add(1); };

  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      while (true) {
        if (int* p = dq.steal()) {
          record(p);
        } else if (done.load()) {
          break;
        } else {
          std::this_thread::yield();
        }
      }
    });
  }

  for (int i = 0; i < kItems; ++i) {
    while (!dq.push(&items[i])) {
      if (int* p = dq.pop()) record(p);
    }
    if ((i & 7) == 0) {
      if (int* p = dq.pop()) record(p);
    }
  }
  while (int* p = dq.pop()) record(p);
  done.store(true);
  for (auto& t : thieves) t.join();

  for (int i = 0; i < kItems; ++i) {
    ASSERT_EQ(taken[i].load(), 1) << "item " << i;
  }
}

// Scheduler-level stress: recursive fan-out across localities keeps the
// deques, inboxes, and the park/wake protocol busy, and repeated drains
// exercise the drain/completion handshake.
TEST(ThreadExecutorStress, RecursiveFanOutAcrossLocalities) {
  ThreadExecutor ex(2, 3);
  std::atomic<int> ran{0};
  for (int round = 0; round < 5; ++round) {
    constexpr int kRoots = 64;
    constexpr int kDepth = 5;  // 64 * (2^6 - 1) = 4032 tasks per round
    std::function<void(int, int)> fan = [&](int depth, int loc) {
      ran.fetch_add(1, std::memory_order_relaxed);
      if (depth == 0) return;
      for (int c = 0; c < 2; ++c) {
        Task t;
        t.locality = static_cast<std::uint32_t>((loc + c) % 2);
        t.fn = [&fan, depth, c, loc] { fan(depth - 1, (loc + c) % 2); };
        ex.spawn(std::move(t));
      }
    };
    for (int r = 0; r < kRoots; ++r) {
      Task t;
      t.locality = static_cast<std::uint32_t>(r % 2);
      t.fn = [&fan, r] { fan(kDepth, r % 2); };
      ex.spawn(std::move(t));
    }
    ex.drain();
  }
  EXPECT_EQ(ran.load(), 5 * 64 * ((1 << 6) - 1));
}

}  // namespace
}  // namespace amtfmm
