// Flight recorder + watchdog tests: bounded ring overwrite, dump validity
// (the dump must load as a Chrome trace), TraceSink routing with full
// tracing off, and the stall watchdog's fire/re-arm discipline.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "runtime/flight_recorder.hpp"
#include "runtime/trace.hpp"
#include "runtime/watchdog.hpp"
#include "support/json.hpp"

namespace amtfmm {
namespace {

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

/// Parses a flight dump; returns the traceEvents array value.
JsonValue load_dump(const std::string& path) {
  std::string text;
  EXPECT_TRUE(read_file(path, text)) << path;
  JsonValue v;
  std::string err;
  EXPECT_TRUE(json_parse(text, v, err)) << err;
  return v;
}

TEST(FlightRecorder, RingKeepsOnlyNewestEvents) {
  FlightRecorder fr(/*workers=*/1, /*events_per_worker=*/8);
  EXPECT_EQ(fr.capacity(), 8u);
  const std::string path = tmp_path("flight_ring.json");
  fr.set_dump_path(path);
  // 20 spans into an 8-slot ring: only the newest 8 (args 12..19) survive.
  for (int i = 0; i < 20; ++i) {
    fr.record_span(0, /*cls=*/1, 1e-3 * i, 1e-3 * i + 5e-4,
                   static_cast<std::uint32_t>(i));
  }
  ASSERT_TRUE(fr.dump("ring test"));

  const JsonValue v = load_dump(path);
  const JsonValue* events = v.find("traceEvents");
  ASSERT_NE(events, nullptr);
  std::vector<double> args;
  for (const JsonValue& e : events->array) {
    if (e.str_or("ph", "") != "X") continue;
    if (const JsonValue* a = e.find("args")) {
      args.push_back(a->num_or("edge", -1.0));
    }
  }
  ASSERT_EQ(args.size(), 8u);
  for (std::size_t i = 0; i < args.size(); ++i) {
    EXPECT_EQ(args[i], 12.0 + static_cast<double>(i));
  }
}

TEST(FlightRecorder, DumpCarriesMetadataAndInstants) {
  FlightRecorder fr(2, 16);
  const std::string path = tmp_path("flight_meta.json");
  fr.set_dump_path(path);
  TraceClock clock;
  clock.steady_origin_s = 123.5;
  clock.wall_anchor_s = 1.7e9;
  clock.offset_s = 0.25;
  clock.uncertainty_s = 1e-5;
  fr.set_meta(/*rank=*/3, /*cores=*/2, clock);
  fr.record_instant(1, InstantKind::kParcelRecv, 2e-3, /*arg=*/0);
  fr.record_comm(CommEvent{1e-3, 2e-3, 0, 3, 2, 64});
  ASSERT_TRUE(fr.dump("unit test"));

  const JsonValue v = load_dump(path);
  const JsonValue* meta = v.find("amtfmm_flight");
  ASSERT_NE(meta, nullptr);
  EXPECT_EQ(meta->str_or("reason", ""), "unit test");
  EXPECT_EQ(meta->num_or("rank", -1.0), 3.0);
  EXPECT_NEAR(meta->num_or("steady_origin_s", 0.0), 123.5, 1e-9);
  EXPECT_NEAR(meta->num_or("clock_offset_s", 0.0), 0.25, 1e-9);
  int instants = 0, wires = 0;
  for (const JsonValue& e : v.find("traceEvents")->array) {
    if (e.str_or("ph", "") == "i") ++instants;
    if (e.str_or("cat", "") == "comm") ++wires;
  }
  EXPECT_EQ(instants, 1);
  EXPECT_EQ(wires, 1);
}

TEST(FlightRecorder, TraceSinkRoutesWithFullTracingOff) {
  TraceSink sink(1);
  FlightRecorder fr(1, 16);
  const std::string path = tmp_path("flight_route.json");
  fr.set_dump_path(path);

  // Nothing attached: record is a no-op (the disabled hot path).
  sink.record(0, 1, 0.0, 1e-3, 7);
  EXPECT_FALSE(sink.enabled());

  sink.set_flight(&fr);
  EXPECT_TRUE(sink.enabled());        // hot-path guard sees flight mode
  EXPECT_FALSE(sink.full_enabled());  // ...but full tracing stays off
  sink.record(0, 1, 0.0, 1e-3, 7);
  sink.record_instant(0, InstantKind::kSteal, 5e-4, 2);
  EXPECT_TRUE(sink.collect().empty()) << "flight events must not leak into "
                                         "the full-trace buffers";
  sink.set_flight(nullptr);
  EXPECT_FALSE(sink.enabled());
  sink.record(0, 1, 0.0, 1e-3, 99);  // after detach: dropped

  ASSERT_TRUE(fr.dump("routing test"));
  const JsonValue v = load_dump(path);
  int spans = 0, instants = 0;
  for (const JsonValue& e : v.find("traceEvents")->array) {
    const std::string ph = e.str_or("ph", "");
    if (ph == "X") {
      ++spans;
      EXPECT_EQ(e.find("args")->num_or("edge", -1.0), 7.0);
    }
    if (ph == "i") ++instants;
  }
  EXPECT_EQ(spans, 1);
  EXPECT_EQ(instants, 1);
}

TEST(FlightRecorder, DumpAllReachesRegisteredRecorders) {
  FlightRecorder fr(1, 8);
  const std::string path = tmp_path("flight_all.json");
  fr.set_dump_path(path);
  fr.record_span(0, 1, 0.0, 1e-3, 0);
  EXPECT_GE(flight_dump_all("dump-all test"), 1);
  const JsonValue v = load_dump(path);
  EXPECT_EQ(v.find("amtfmm_flight")->str_or("reason", ""), "dump-all test");
}

// ---- watchdog ----------------------------------------------------------

TEST(Watchdog, FiresOnceOnStallAndReportsStallTime) {
  std::atomic<int> fires{0};
  std::atomic<double> stalled{0.0};
  Watchdog wd(0.05, [&](double s) {
    fires.fetch_add(1);
    stalled.store(s);
  });
  wd.arm();
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  EXPECT_TRUE(wd.fired());
  EXPECT_EQ(fires.load(), 1) << "one stall episode must fire exactly once";
  EXPECT_GE(stalled.load(), 0.05);
}

TEST(Watchdog, BeatsSuppressFiring) {
  std::atomic<int> fires{0};
  Watchdog wd(0.2, [&](double) { fires.fetch_add(1); });
  wd.arm();
  for (int i = 0; i < 10; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    wd.beat();
  }
  wd.disarm();
  EXPECT_EQ(fires.load(), 0);
  EXPECT_FALSE(wd.fired());
}

TEST(Watchdog, DisarmedPeriodsAreNotWatched) {
  std::atomic<int> fires{0};
  Watchdog wd(0.05, [&](double) { fires.fetch_add(1); });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_EQ(fires.load(), 0) << "never armed, must never fire";
}

TEST(Watchdog, BeatReArmsDetectionAfterAStall) {
  std::atomic<int> fires{0};
  Watchdog wd(0.05, [&](double) { fires.fetch_add(1); });
  wd.arm();
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_EQ(fires.load(), 1);
  wd.beat();  // stall ended; a NEW stall must be reported again
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_EQ(fires.load(), 2);
}

// The serve-shaped integration: a stalled "epoch" dumps the flight
// recorder through the registry, exactly what amtfmm_serve wires up.
TEST(Watchdog, StallDumpsFlightRecorder) {
  FlightRecorder fr(1, 8);
  const std::string path = tmp_path("flight_watchdog.json");
  fr.set_dump_path(path);
  fr.record_span(0, 1, 0.0, 1e-3, 5);
  std::atomic<int> dumped{0};
  Watchdog wd(0.05, [&](double) {
    dumped.store(flight_dump_all("serve epoch watchdog"));
  });
  wd.arm();
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  EXPECT_TRUE(wd.fired());
  EXPECT_GE(dumped.load(), 1);
  const JsonValue v = load_dump(path);
  EXPECT_EQ(v.find("amtfmm_flight")->str_or("reason", ""),
            "serve epoch watchdog");
}

}  // namespace
}  // namespace amtfmm
