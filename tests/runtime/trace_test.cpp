#include <gtest/gtest.h>

#include <cmath>

#include "runtime/trace.hpp"

namespace amtfmm {
namespace {

TEST(Utilization, SingleFullyBusyWorker) {
  std::vector<TraceEvent> ev{{0.0, 1.0, 0, 0}};
  const auto p = utilization(ev, 0.0, 1.0, 4, 1);
  for (double f : p.total) EXPECT_NEAR(f, 1.0, 1e-12);
}

TEST(Utilization, EventSplitAcrossIntervals) {
  // One event covering [0.25, 0.75] of a 1s window, 2 intervals, 1 worker:
  // each interval gets 0.25s busy out of 0.5s -> f = 0.5.
  std::vector<TraceEvent> ev{{0.25, 0.75, 0, 3}};
  const auto p = utilization(ev, 0.0, 1.0, 2, 1);
  EXPECT_NEAR(p.total[0], 0.5, 1e-12);
  EXPECT_NEAR(p.total[1], 0.5, 1e-12);
  EXPECT_NEAR(p.by_class[3][0], 0.5, 1e-12);
  EXPECT_NEAR(p.by_class[2][0], 0.0, 1e-12);
}

TEST(Utilization, MultipleWorkersNormalize) {
  // Two workers, one busy all the time, one idle: f = 1/2 (paper eq. 1's
  // n-thread denominator).
  std::vector<TraceEvent> ev{{0.0, 2.0, 0, 1}};
  const auto p = utilization(ev, 0.0, 2.0, 5, 2);
  for (double f : p.total) EXPECT_NEAR(f, 0.5, 1e-12);
}

TEST(Utilization, PerClassFractionsSumToTotal) {
  std::vector<TraceEvent> ev{
      {0.0, 0.5, 0, 0}, {0.5, 1.0, 0, 5}, {0.0, 1.0, 1, 9}};
  const auto p = utilization(ev, 0.0, 1.0, 10, 2);
  for (int k = 0; k < 10; ++k) {
    double sum = 0.0;
    for (const auto& cls : p.by_class) sum += cls[static_cast<std::size_t>(k)];
    EXPECT_NEAR(sum, p.total[static_cast<std::size_t>(k)], 1e-12);
  }
}

TEST(Utilization, EventsOutsideWindowAreClipped) {
  std::vector<TraceEvent> ev{{-1.0, 0.5, 0, 0}, {0.9, 5.0, 0, 0}};
  const auto p = utilization(ev, 0.0, 1.0, 1, 1);
  EXPECT_NEAR(p.total[0], 0.6, 1e-12);
}

TEST(Utilization, EventsAtWindowEndContributeNothing) {
  // An event starting exactly at t_end and a zero-length event: neither
  // may contribute, and no interval may come out NaN or negative.
  std::vector<TraceEvent> ev{{1.0, 1.5, 0, 0}, {0.5, 0.5, 0, 0}};
  const auto p = utilization(ev, 0.0, 1.0, 4, 1);
  for (double f : p.total) {
    EXPECT_FALSE(std::isnan(f));
    EXPECT_NEAR(f, 0.0, 1e-12);
  }
}

TEST(Utilization, EventEndingExactlyAtWindowEndFullyCounted) {
  // Regression for the boundary-split arithmetic: an event ending exactly
  // at t_end lands in the last interval with its full overlap, and an
  // event straddling the final boundary splits proportionally.
  std::vector<TraceEvent> ev{{0.75, 1.0, 0, 0}};
  const auto p = utilization(ev, 0.0, 1.0, 4, 1);
  EXPECT_NEAR(p.total[0], 0.0, 1e-12);
  EXPECT_NEAR(p.total[3], 1.0, 1e-12);

  std::vector<TraceEvent> straddle{{0.6, 0.9, 0, 0}};
  const auto q = utilization(straddle, 0.0, 1.0, 4, 1);
  // [0.6, 0.75) in interval 2 (0.15 of 0.25), [0.75, 0.9) in interval 3.
  EXPECT_NEAR(q.total[2], 0.6, 1e-12);
  EXPECT_NEAR(q.total[3], 0.6, 1e-12);
}

TEST(Utilization, DegenerateWindowYieldsZeros) {
  std::vector<TraceEvent> ev{{0.0, 1.0, 0, 0}};
  for (const double t_end : {0.0, -1.0}) {
    const auto p = utilization(ev, 0.0, t_end, 3, 2);
    ASSERT_EQ(p.total.size(), 3u);
    for (double f : p.total) {
      EXPECT_FALSE(std::isnan(f));
      EXPECT_EQ(f, 0.0);
    }
  }
}

TEST(TraceSink, DisabledRecordsNothing) {
  TraceSink sink(2);
  sink.record(0, 1, 0.0, 1.0);
  EXPECT_TRUE(sink.collect().empty());
  sink.set_enabled(true);
  sink.record(1, 2, 0.5, 1.0);
  sink.record(0, 1, 0.0, 1.0);
  const auto ev = sink.collect();
  ASSERT_EQ(ev.size(), 2u);
  EXPECT_EQ(ev[0].worker, 0u);  // sorted by start time
  EXPECT_EQ(ev[1].cls, 2);
}

TEST(TraceClassNames, CoverOperatorsAndRuntime) {
  EXPECT_STREQ(trace_class_name(0), "S->T");
  EXPECT_STREQ(trace_class_name(kClsNetwork), "network");
  EXPECT_STREQ(trace_class_name(kClsOther), "other");
  // Unknown classes degrade to a placeholder instead of reading past the
  // name table.
  EXPECT_STREQ(trace_class_name(kNumTraceClasses), "?");
  EXPECT_STREQ(trace_class_name(0xff), "?");
}

TEST(TraceInstantNames, CoverAllKinds) {
  EXPECT_STREQ(instant_kind_name(InstantKind::kSteal), "steal");
  EXPECT_STREQ(instant_kind_name(InstantKind::kParcelSend), "parcel_send");
  EXPECT_STREQ(instant_kind_name(InstantKind::kParcelRecv), "parcel_recv");
  EXPECT_STREQ(instant_kind_name(InstantKind::kLcoFire), "lco_fire");
}

TEST(TraceSink, SpanArgAttributionRoundTrips) {
  TraceSink sink(1);
  sink.set_enabled(true);
  sink.record(0, 3, 0.0, 1.0, 42);
  sink.record(0, 3, 1.0, 2.0);  // default: no attribution
  const auto ev = sink.collect();
  ASSERT_EQ(ev.size(), 2u);
  EXPECT_EQ(ev[0].arg, 42u);
  EXPECT_EQ(ev[1].arg, kNoTraceArg);
}

TEST(TraceSink, InstantsCollectSortedAcrossWorkers) {
  TraceSink sink(2);
  sink.record_instant(0, InstantKind::kSteal, 1.0, 1);
  EXPECT_TRUE(sink.collect_instants().empty());  // disabled: dropped
  sink.set_enabled(true);
  sink.record_instant(1, InstantKind::kLcoFire, 2.0);
  sink.record_instant(0, InstantKind::kSteal, 0.5, 1);
  sink.record_instant(1, InstantKind::kParcelRecv, 1.0, 0);
  const auto ev = sink.collect_instants();
  ASSERT_EQ(ev.size(), 3u);
  EXPECT_EQ(ev[0].kind, InstantKind::kSteal);
  EXPECT_EQ(ev[0].arg, 1u);
  EXPECT_EQ(ev[1].kind, InstantKind::kParcelRecv);
  EXPECT_EQ(ev[2].kind, InstantKind::kLcoFire);
  EXPECT_EQ(ev[2].arg, kNoTraceArg);
  sink.clear();
  EXPECT_TRUE(sink.collect_instants().empty());
}

}  // namespace
}  // namespace amtfmm
