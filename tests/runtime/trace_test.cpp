#include <gtest/gtest.h>

#include "runtime/trace.hpp"

namespace amtfmm {
namespace {

TEST(Utilization, SingleFullyBusyWorker) {
  std::vector<TraceEvent> ev{{0.0, 1.0, 0, 0}};
  const auto p = utilization(ev, 0.0, 1.0, 4, 1);
  for (double f : p.total) EXPECT_NEAR(f, 1.0, 1e-12);
}

TEST(Utilization, EventSplitAcrossIntervals) {
  // One event covering [0.25, 0.75] of a 1s window, 2 intervals, 1 worker:
  // each interval gets 0.25s busy out of 0.5s -> f = 0.5.
  std::vector<TraceEvent> ev{{0.25, 0.75, 0, 3}};
  const auto p = utilization(ev, 0.0, 1.0, 2, 1);
  EXPECT_NEAR(p.total[0], 0.5, 1e-12);
  EXPECT_NEAR(p.total[1], 0.5, 1e-12);
  EXPECT_NEAR(p.by_class[3][0], 0.5, 1e-12);
  EXPECT_NEAR(p.by_class[2][0], 0.0, 1e-12);
}

TEST(Utilization, MultipleWorkersNormalize) {
  // Two workers, one busy all the time, one idle: f = 1/2 (paper eq. 1's
  // n-thread denominator).
  std::vector<TraceEvent> ev{{0.0, 2.0, 0, 1}};
  const auto p = utilization(ev, 0.0, 2.0, 5, 2);
  for (double f : p.total) EXPECT_NEAR(f, 0.5, 1e-12);
}

TEST(Utilization, PerClassFractionsSumToTotal) {
  std::vector<TraceEvent> ev{
      {0.0, 0.5, 0, 0}, {0.5, 1.0, 0, 5}, {0.0, 1.0, 1, 9}};
  const auto p = utilization(ev, 0.0, 1.0, 10, 2);
  for (int k = 0; k < 10; ++k) {
    double sum = 0.0;
    for (const auto& cls : p.by_class) sum += cls[static_cast<std::size_t>(k)];
    EXPECT_NEAR(sum, p.total[static_cast<std::size_t>(k)], 1e-12);
  }
}

TEST(Utilization, EventsOutsideWindowAreClipped) {
  std::vector<TraceEvent> ev{{-1.0, 0.5, 0, 0}, {0.9, 5.0, 0, 0}};
  const auto p = utilization(ev, 0.0, 1.0, 1, 1);
  EXPECT_NEAR(p.total[0], 0.6, 1e-12);
}

TEST(TraceSink, DisabledRecordsNothing) {
  TraceSink sink(2);
  sink.record(0, 1, 0.0, 1.0);
  EXPECT_TRUE(sink.collect().empty());
  sink.set_enabled(true);
  sink.record(1, 2, 0.5, 1.0);
  sink.record(0, 1, 0.0, 1.0);
  const auto ev = sink.collect();
  ASSERT_EQ(ev.size(), 2u);
  EXPECT_EQ(ev[0].worker, 0u);  // sorted by start time
  EXPECT_EQ(ev[1].cls, 2);
}

TEST(TraceClassNames, CoverOperatorsAndRuntime) {
  EXPECT_STREQ(trace_class_name(0), "S->T");
  EXPECT_STREQ(trace_class_name(kClsNetwork), "network");
  EXPECT_STREQ(trace_class_name(kClsOther), "other");
}

}  // namespace
}  // namespace amtfmm
