#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "runtime/gas.hpp"
#include "runtime/runtime.hpp"

namespace amtfmm {
namespace {

TEST(Lco, SumReductionAcrossTasks) {
  ThreadExecutor ex(1, 3);
  SumLCO sum(ex, 100);
  for (int i = 1; i <= 100; ++i) {
    Task t;
    t.fn = [&sum, i] { sum.add(static_cast<double>(i)); };
    ex.spawn(std::move(t));
  }
  ex.drain();
  EXPECT_TRUE(sum.triggered());
  EXPECT_DOUBLE_EQ(sum.value(), 5050.0);
}

TEST(Lco, RearmRestartsTheTriggerOnceProtocol) {
  ThreadExecutor ex(1, 2);
  SumLCO sum(ex, 2);
  sum.add(1.0);
  sum.add(2.0);
  ex.drain();
  ASSERT_TRUE(sum.triggered());

  // Quiescent re-arm: the countdown restarts and the trigger clears, so a
  // second epoch of inputs fires the LCO once more.  Reduction state is
  // the subclass's business and persists (ExpansionLCO::reset drops it).
  sum.rearm(2);
  EXPECT_FALSE(sum.triggered());
  std::atomic<int> fired{0};
  Task c;
  c.fn = [&fired] { fired.fetch_add(1); };
  sum.register_continuation(std::move(c));
  sum.add(3.0);
  ex.drain();
  EXPECT_FALSE(sum.triggered());
  EXPECT_EQ(fired.load(), 0);
  sum.add(4.0);
  ex.drain();
  EXPECT_TRUE(sum.triggered());
  EXPECT_EQ(fired.load(), 1);
  EXPECT_DOUBLE_EQ(sum.value(), 10.0);

  // Zero-input re-arm mirrors the constructor: triggered immediately.
  sum.rearm(0);
  EXPECT_TRUE(sum.triggered());
}

TEST(Lco, RearmCyclesMatchConstructionEachEpoch) {
  ThreadExecutor ex(1, 2);
  SumLCO sum(ex, 3);
  for (int epoch = 0; epoch < 5; ++epoch) {
    if (epoch > 0) {
      sum.rearm(3);
      EXPECT_FALSE(sum.triggered());
    }
    for (int i = 0; i < 3; ++i) {
      Task t;
      t.fn = [&sum] { sum.add(1.0); };
      ex.spawn(std::move(t));
    }
    ex.drain();
    EXPECT_TRUE(sum.triggered()) << "epoch " << epoch;
  }
  EXPECT_DOUBLE_EQ(sum.value(), 15.0);
}

TEST(Lco, ContinuationRegisteredBeforeTriggerFiresOnce) {
  ThreadExecutor ex(1, 2);
  SumLCO sum(ex, 2);
  std::atomic<int> fired{0};
  Task c;
  c.fn = [&fired] { fired.fetch_add(1); };
  sum.register_continuation(std::move(c));
  EXPECT_EQ(fired.load(), 0);
  sum.add(1.0);
  ex.drain();
  EXPECT_EQ(fired.load(), 0) << "predicate not yet satisfied";
  sum.add(2.0);
  ex.drain();
  EXPECT_EQ(fired.load(), 1);
}

TEST(Lco, LateContinuationFiresImmediately) {
  // Figure 2 semantics: registrations may arrive before or after inputs.
  ThreadExecutor ex(1, 1);
  FutureLCO<int> f(ex);
  f.set(42);
  ex.drain();
  std::atomic<int> fired{0};
  Task c;
  c.fn = [&fired] { fired.fetch_add(1); };
  f.register_continuation(std::move(c));
  ex.drain();
  EXPECT_EQ(fired.load(), 1);
  EXPECT_EQ(f.get(), 42);
}

// Deterministic two-thread interleavings of input delivery against
// registration/wait, gated at operation granularity so each order replays
// identically every run.  The instruction-level schedules of the same races
// are explored exhaustively by the rtcheck model checker (lco.trigger_once,
// lco.late_continuation, lco.wait_vs_fire).
class Lockstep {
 public:
  void reach(int step) const {
    while (n_.load(std::memory_order_acquire) != step) {
      std::this_thread::yield();
    }
  }
  void advance() { n_.fetch_add(1, std::memory_order_release); }

 private:
  std::atomic<int> n_{0};
};

TEST(LcoInterleaving, RegistrationOnEitherSideOfTheFireRunsOnce) {
  // Order A: the fire completes before the registration.
  {
    ThreadExecutor ex(1, 1);
    SumLCO sum(ex, 1);
    std::atomic<int> fired{0};
    Lockstep gate;
    std::thread producer([&] {
      sum.add(1.0);
      gate.advance();  // step 1: input applied, LCO fired
    });
    gate.reach(1);
    Task c;
    c.fn = [&fired] { fired.fetch_add(1); };
    sum.register_continuation(std::move(c));
    producer.join();
    ex.drain();
    EXPECT_EQ(fired.load(), 1);
  }
  // Order B: the registration lands before the final input.
  {
    ThreadExecutor ex(1, 1);
    SumLCO sum(ex, 1);
    std::atomic<int> fired{0};
    Lockstep gate;
    std::thread producer([&] {
      gate.reach(1);  // wait for the registration
      sum.add(1.0);
      gate.advance();
    });
    Task c;
    c.fn = [&fired] { fired.fetch_add(1); };
    sum.register_continuation(std::move(c));
    gate.advance();
    gate.reach(2);
    producer.join();
    ex.drain();
    EXPECT_EQ(fired.load(), 1);
  }
}

TEST(LcoInterleaving, WaiterBlockedBeforeTheFinalInputWakes) {
  // The main thread is provably inside wait() (spinning on the LCO's
  // condition variable) before the producer delivers the final input — the
  // lost-wakeup order that rtcheck's lco.wait_vs_fire explores at the
  // instruction level.
  ThreadExecutor ex(1, 1);
  SumLCO sum(ex, 2);
  sum.add(1.0);
  std::thread producer([&] {
    // No gate can order "inside wait()" exactly; a short real-time delay
    // makes the waiter overwhelmingly likely to have blocked, and the test
    // remains correct (just weaker) if it has not.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    sum.add(2.0);
  });
  EXPECT_DOUBLE_EQ(sum.value(), 3.0);  // value() waits for the trigger
  producer.join();
  ex.drain();
}

TEST(Lco, FutureRoundTrip) {
  ThreadExecutor ex(1, 2);
  FutureLCO<double> f(ex);
  Task t;
  t.fn = [&f] { f.set(3.25); };
  ex.spawn(std::move(t));
  EXPECT_DOUBLE_EQ(f.get(), 3.25);  // blocks until set
}

TEST(Gas, AllocateAndResolvePerLocality) {
  ThreadExecutor ex(3, 1);
  Gas gas(3);
  const GlobalAddress a = gas.alloc(1, std::make_unique<SumLCO>(ex, 1));
  const GlobalAddress b = gas.alloc(1, std::make_unique<SumLCO>(ex, 1));
  const GlobalAddress c = gas.alloc(2, std::make_unique<SumLCO>(ex, 1));
  EXPECT_EQ(a.locality, 1u);
  EXPECT_EQ(a.slot, 0u);
  EXPECT_EQ(b.slot, 1u);
  EXPECT_EQ(c.locality, 2u);
  EXPECT_EQ(gas.objects_on(1), 2u);
  EXPECT_EQ(gas.objects_on(0), 0u);
  EXPECT_NE(gas.resolve(a), gas.resolve(b));
  static_cast<SumLCO*>(gas.resolve(a))->add(7.0);
  ex.drain();
  EXPECT_DOUBLE_EQ(static_cast<SumLCO*>(gas.resolve(a))->value(), 7.0);
}

TEST(RuntimeFacade, ParcelsInvokeActionsAtTheTarget) {
  RuntimeConfig cfg;
  cfg.localities = 2;
  cfg.cores_per_locality = 2;
  Runtime rt(cfg);
  // An LCO on locality 1 and an action that feeds it from parcel payload.
  const GlobalAddress addr =
      rt.gas().alloc(1, std::make_unique<SumLCO>(rt.executor(), 3));
  std::atomic<int> wrong_locality{0};
  const std::uint32_t action =
      rt.register_action([&wrong_locality](Runtime& r, const Parcel& p) {
        if (current_worker() / r.config().cores_per_locality !=
            static_cast<int>(p.target.locality)) {
          wrong_locality.fetch_add(1);
        }
        double v;
        std::memcpy(&v, p.payload.data(), sizeof v);
        static_cast<SumLCO*>(r.gas().resolve(p.target))->add(v);
      });
  for (int i = 1; i <= 3; ++i) {
    Parcel p;
    p.action = action;
    p.target = addr;
    const double v = i;
    p.payload.resize(sizeof v);
    std::memcpy(p.payload.data(), &v, sizeof v);
    rt.send_parcel(/*from=*/0, std::move(p));
  }
  rt.drain();
  EXPECT_EQ(wrong_locality.load(), 0);
  EXPECT_DOUBLE_EQ(static_cast<SumLCO*>(rt.gas().resolve(addr))->value(), 6.0);
  EXPECT_EQ(rt.executor().parcels_sent(), 3u);
}

TEST(RuntimeFacade, SimModeParcelsWork) {
  RuntimeConfig cfg;
  cfg.localities = 2;
  cfg.cores_per_locality = 1;
  cfg.mode = ExecMode::kSim;
  Runtime rt(cfg);
  const GlobalAddress addr =
      rt.gas().alloc(1, std::make_unique<SumLCO>(rt.executor(), 2));
  const std::uint32_t action = rt.register_action([](Runtime& r, const Parcel& p) {
    static_cast<SumLCO*>(r.gas().resolve(p.target))->add(1.0);
  });
  for (int i = 0; i < 2; ++i) {
    Parcel p;
    p.action = action;
    p.target = addr;
    rt.send_parcel(0, std::move(p), {{kClsNetwork, 1e-6}});
  }
  rt.drain();
  EXPECT_TRUE(rt.gas().resolve(addr)->triggered());
  EXPECT_GT(rt.executor().now(), 0.0);
}

}  // namespace
}  // namespace amtfmm
