// Telemetry channel tests: window deltas, the JSON wire format, the
// Prometheus exposition, and the sampler -> aggregator -> snapshot-file
// pipeline end to end (all in-process; the cross-rank transport leg is
// covered by scripts/check_telemetry.py against a real 2-process serve).

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "runtime/counters.hpp"
#include "runtime/telemetry.hpp"
#include "support/json.hpp"

namespace amtfmm {
namespace {

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

TEST(TelemetryDelta, CountersSubtractGaugesPassThrough) {
  CounterRegistry reg(1);
  const auto c = reg.counter("sched.tasks_run");
  const auto g = reg.gauge("gas.objects_hw");
  const auto h = reg.histogram("serve.epoch_us");
  reg.set_enabled(true);
  reg.add(0, c, 10);
  reg.gauge_max(0, g, 7);
  reg.observe(0, h, 100);
  const CounterSnapshot prev = reg.snapshot();
  reg.add(0, c, 5);
  reg.gauge_max(0, g, 9);
  reg.observe(0, h, 200);
  reg.observe(0, h, 300);
  const CounterSnapshot cur = reg.snapshot();

  const TelemetrySample s = telemetry_delta(prev, cur);
  EXPECT_EQ(s.value("sched.tasks_run"), 5u);   // window delta
  EXPECT_EQ(s.value("gas.objects_hw"), 9u);    // current value
  const auto* hd = s.hist("serve.epoch_us");
  ASSERT_NE(hd, nullptr);
  EXPECT_EQ(hd->count, 2u);                    // window observations only
  EXPECT_EQ(hd->sum, 500u);
}

TEST(TelemetryWire, EncodeDecodeRoundTrip) {
  TelemetrySample s;
  s.rank = 3;
  s.seq = 41;
  s.t_s = 1.5;
  s.dt_s = 0.25;
  s.counters.push_back({"sched.tasks_run", 1234});
  s.gauges.push_back({"gas.objects_hw", 99});
  CounterSnapshot::Histogram h;
  h.name = "serve.epoch_us";
  h.count = 2;
  h.sum = 300;
  h.buckets[7] = 2;
  s.hists.push_back(h);

  TelemetrySample out;
  std::string err;
  ASSERT_TRUE(telemetry_decode(telemetry_encode(s), out, err)) << err;
  EXPECT_EQ(out.rank, 3u);
  EXPECT_EQ(out.seq, 41u);
  EXPECT_NEAR(out.t_s, 1.5, 1e-12);
  EXPECT_NEAR(out.dt_s, 0.25, 1e-12);
  EXPECT_EQ(out.value("sched.tasks_run"), 1234u);
  EXPECT_EQ(out.value("gas.objects_hw"), 99u);
  const auto* hd = out.hist("serve.epoch_us");
  ASSERT_NE(hd, nullptr);
  EXPECT_EQ(hd->count, 2u);
  EXPECT_EQ(hd->sum, 300u);
  EXPECT_EQ(hd->buckets[7], 2u);

  EXPECT_FALSE(telemetry_decode("not json", out, err));
  EXPECT_FALSE(telemetry_decode("{\"v\":99}", out, err));  // future version
}

TEST(TelemetryProm, ExpositionGrammarAndNames) {
  TelemetrySample s;
  s.rank = 1;
  s.dt_s = 0.5;
  s.counters.push_back({"sched.tasks_run", 100});  // 200/s
  s.gauges.push_back({"gas.objects_hw", 64});
  CounterSnapshot::Histogram h;
  h.name = "serve.epoch_us";
  h.count = 4;
  h.buckets[10] = 4;  // all in [1024, 2048)
  s.hists.push_back(h);

  const std::string text = telemetry_render_prom({s});
  EXPECT_NE(text.find("# TYPE amtfmm_sched_tasks_run_rate gauge"),
            std::string::npos);
  EXPECT_NE(text.find("amtfmm_sched_tasks_run_rate{rank=\"1\"} 200"),
            std::string::npos);
  EXPECT_NE(text.find("amtfmm_gas_objects_hw{rank=\"1\"} 64"),
            std::string::npos);
  EXPECT_NE(text.find("amtfmm_serve_epoch_us_window_count{rank=\"1\"} 4"),
            std::string::npos);
  EXPECT_NE(text.find("amtfmm_serve_epoch_us_p99"), std::string::npos);
  // No unsanitized '.' may survive in a metric name.
  for (std::size_t pos = 0; (pos = text.find("amtfmm_", pos)) !=
                            std::string::npos;
       ++pos) {
    const std::size_t end = text.find_first_of("{ ", pos);
    ASSERT_NE(end, std::string::npos);
    EXPECT_EQ(text.substr(pos, end - pos).find('.'), std::string::npos);
  }
}

TEST(TelemetryPipeline, SamplerToAggregatorToSnapshotFile) {
  CounterRegistry reg(2);
  const auto c = reg.counter("sched.tasks_run");
  reg.set_enabled(true);

  const std::string path = tmp_path("telemetry_snapshot.json");
  TelemetryAggregator agg(/*world=*/1, path);
  {
    TelemetrySampler sampler(reg, /*rank=*/0, /*interval_s=*/0.02,
                             [&agg](std::string&& s) {
                               agg.enqueue(std::move(s));
                             });
    for (int i = 0; i < 10; ++i) {
      reg.add(i % 2, c, 100);
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    sampler.stop();  // final flush ships the tail window
  }
  agg.stop();
  EXPECT_GT(agg.accepted(), 0u);
  EXPECT_EQ(agg.rejected(), 0u);

  std::vector<std::vector<TelemetrySample>> series;
  std::string err;
  ASSERT_TRUE(telemetry_load_snapshot(path, series, err)) << err;
  ASSERT_EQ(series.size(), 1u);
  ASSERT_FALSE(series[0].empty());
  // Window deltas over the whole run must sum to everything recorded, and
  // seq must be gapless (nothing was dropped in-process).
  std::uint64_t total = 0;
  std::uint64_t expect_seq = 0;
  for (const TelemetrySample& s : series[0]) {
    EXPECT_EQ(s.seq, expect_seq++);
    EXPECT_GT(s.dt_s, 0.0);
    total += s.value("sched.tasks_run");
  }
  EXPECT_EQ(total, 1000u);
}

TEST(TelemetryPipeline, AggregatorRejectsGarbageAndForeignRanks) {
  const std::string path = tmp_path("telemetry_reject.json");
  TelemetryAggregator agg(/*world=*/2, path);
  TelemetrySample ok;
  ok.rank = 1;
  agg.enqueue(telemetry_encode(ok));
  TelemetrySample bad;
  bad.rank = 7;  // >= world
  agg.enqueue(telemetry_encode(bad));
  agg.enqueue("{{{ not json");
  agg.stop();
  EXPECT_EQ(agg.accepted(), 1u);
  EXPECT_EQ(agg.rejected(), 2u);

  std::vector<std::vector<TelemetrySample>> series;
  std::string err;
  ASSERT_TRUE(telemetry_load_snapshot(path, series, err)) << err;
  ASSERT_EQ(series.size(), 2u);
  EXPECT_TRUE(series[0].empty());
  ASSERT_EQ(series[1].size(), 1u);
}

TEST(TelemetryPipeline, LoadSnapshotMissingFileFails) {
  std::vector<std::vector<TelemetrySample>> series;
  std::string err;
  EXPECT_FALSE(telemetry_load_snapshot(tmp_path("nope.json"), series, err));
  EXPECT_FALSE(err.empty());
}

}  // namespace
}  // namespace amtfmm
