#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/sim_executor.hpp"
#include "runtime/thread_executor.hpp"

namespace amtfmm {
namespace {

CoalesceConfig coalesce_on(std::uint32_t max_parcels = 32,
                           std::size_t max_bytes = 1 << 20,
                           double deadline = 100e-6) {
  CoalesceConfig c;
  c.enabled = true;
  c.max_parcels = max_parcels;
  c.max_bytes = max_bytes;
  c.flush_deadline = deadline;
  return c;
}

/// Runs `body` inside a worker task on locality 0 and drains.  With one
/// core per locality the sender occupies locality 0's only worker, so no
/// idle-path flush can race with the sends — flush counts are exact.
template <typename Fn>
void run_on_worker(ThreadExecutor& ex, Fn body) {
  Task t;
  t.fn = std::move(body);
  ex.spawn(std::move(t));
  ex.drain();
}

TEST(Coalescing, FlushOnParcelThreshold) {
  ThreadExecutor ex(2, 1, SchedPolicy::kWorkStealing, 1, coalesce_on(4));
  std::atomic<int> ran{0};
  run_on_worker(ex, [&ex, &ran] {
    for (int i = 0; i < 8; ++i) {
      Task t;
      t.fn = [&ran] { ran.fetch_add(1); };
      ex.send(0, 1, 100, std::move(t));
    }
  });
  EXPECT_EQ(ran.load(), 8);
  const CommStats s = ex.comm_stats();
  EXPECT_EQ(s.parcels, 8u);
  EXPECT_EQ(s.batches, 2u);
  EXPECT_EQ(s.flush_threshold, 2u);
  EXPECT_EQ(s.bytes, 800u);
  EXPECT_DOUBLE_EQ(s.coalescing_factor(), 4.0);
  EXPECT_EQ(s.parcels_to[1], 8u);
  EXPECT_EQ(s.batches_to[1], 2u);
  // Two batches of 4 parcels: bucket log2(4) == 2.
  EXPECT_EQ(s.batch_size_log2[2], 2u);
}

TEST(Coalescing, FlushOnByteThreshold) {
  ThreadExecutor ex(2, 1, SchedPolicy::kWorkStealing, 1,
                    coalesce_on(1000, /*max_bytes=*/1000));
  std::atomic<int> ran{0};
  run_on_worker(ex, [&ex, &ran] {
    for (int i = 0; i < 3; ++i) {
      Task t;
      t.fn = [&ran] { ran.fetch_add(1); };
      ex.send(0, 1, 400, std::move(t));  // crosses 1000 bytes on the 3rd
    }
  });
  EXPECT_EQ(ran.load(), 3);
  const CommStats s = ex.comm_stats();
  EXPECT_EQ(s.parcels, 3u);
  EXPECT_EQ(s.batches, 1u);
  EXPECT_EQ(s.flush_threshold, 1u);
}

TEST(Coalescing, FlushOnQuiescenceStrandsNothing) {
  // Thresholds far above what is sent: only the idle/quiescence paths can
  // deliver, and drain() must not return before they do.
  ThreadExecutor ex(2, 1, SchedPolicy::kWorkStealing, 1, coalesce_on(1000));
  std::atomic<int> ran{0};
  run_on_worker(ex, [&ex, &ran] {
    for (int i = 0; i < 5; ++i) {
      Task t;
      t.fn = [&ran] { ran.fetch_add(1); };
      ex.send(0, 1, 64, std::move(t));
    }
  });
  EXPECT_EQ(ran.load(), 5);
  const CommStats s = ex.comm_stats();
  EXPECT_EQ(s.parcels, 5u);
  EXPECT_EQ(s.batches, 1u);
  EXPECT_EQ(s.flush_deadline + s.flush_quiescence, 1u);
}

TEST(Coalescing, RepeatedDrainsReuseBuffers) {
  ThreadExecutor ex(2, 1, SchedPolicy::kWorkStealing, 1, coalesce_on(1000));
  std::atomic<int> ran{0};
  for (int round = 0; round < 3; ++round) {
    run_on_worker(ex, [&ex, &ran] {
      for (int i = 0; i < 4; ++i) {
        Task t;
        t.fn = [&ran] { ran.fetch_add(1); };
        ex.send(0, 1, 32, std::move(t));
      }
    });
    EXPECT_EQ(ran.load(), 4 * (round + 1));
  }
  EXPECT_EQ(ex.comm_stats().batches, 3u);
}

TEST(Coalescing, DeliversWithoutDrainWhileWorkersBusy) {
  // A worker-side send must reach the destination via the idle-path
  // flushes (deadline or pre-park quiescence) even though drain() has not
  // been called: locality 0's second worker is idle and flushes for it.
  ThreadExecutor ex(2, 2, SchedPolicy::kWorkStealing, 1,
                    coalesce_on(1000, 1 << 20, /*deadline=*/0.0));
  std::atomic<bool> delivered{false};
  Task sender;
  sender.fn = [&ex, &delivered] {
    Task t;
    t.fn = [&delivered] { delivered.store(true); };
    ex.send(0, 1, 64, std::move(t));
    const auto t0 = std::chrono::steady_clock::now();
    while (!delivered.load() &&
           std::chrono::steady_clock::now() - t0 < std::chrono::seconds(10)) {
      std::this_thread::yield();
    }
  };
  ex.spawn(std::move(sender));
  ex.drain();
  EXPECT_TRUE(delivered.load());
  const CommStats s = ex.comm_stats();
  EXPECT_GE(s.flush_deadline + s.flush_quiescence, 1u);
}

TEST(Coalescing, PreservesPerPairFifoUnderConcurrentSenders) {
  // Four concurrent sender tasks on locality 0 each send an increasing
  // sequence to locality 1 with a tiny batch threshold (many batches, so
  // cross-batch ordering is exercised).  Per-(src,dst) FIFO means every
  // sender's own subsequence must arrive in order.
  constexpr int kSenders = 4;
  constexpr int kPerSender = 200;
  ThreadExecutor ex(2, 4, SchedPolicy::kWorkStealing, 1, coalesce_on(3));
  std::mutex mu;
  std::vector<std::vector<int>> seen(kSenders);
  for (int sndr = 0; sndr < kSenders; ++sndr) {
    Task producer;
    producer.fn = [&ex, &mu, &seen, sndr] {
      for (int seq = 0; seq < kPerSender; ++seq) {
        Task t;
        t.locality = 1;
        t.fn = [&mu, &seen, sndr, seq] {
          std::lock_guard lk(mu);
          seen[static_cast<std::size_t>(sndr)].push_back(seq);
        };
        ex.send(0, 1, 16, std::move(t));
      }
    };
    ex.spawn(std::move(producer));
  }
  ex.drain();
  for (int sndr = 0; sndr < kSenders; ++sndr) {
    const auto& v = seen[static_cast<std::size_t>(sndr)];
    ASSERT_EQ(v.size(), static_cast<std::size_t>(kPerSender));
    for (int seq = 0; seq < kPerSender; ++seq) {
      ASSERT_EQ(v[static_cast<std::size_t>(seq)], seq)
          << "sender " << sndr << " delivered out of order";
    }
  }
  const CommStats s = ex.comm_stats();
  EXPECT_EQ(s.parcels, static_cast<std::uint64_t>(kSenders * kPerSender));
  EXPECT_GT(s.batches, 1u);
  EXPECT_GT(s.coalescing_factor(), 1.0);
}

TEST(Coalescing, DisabledMatchesLegacyAccounting) {
  ThreadExecutor ex(2, 1);  // coalescing off by default
  Task t;
  t.fn = [] {};
  ex.send(0, 1, 1000, std::move(t));
  ex.drain();
  const CommStats s = ex.comm_stats();
  EXPECT_EQ(s.parcels, 1u);
  EXPECT_EQ(s.batches, 1u);
  EXPECT_DOUBLE_EQ(s.coalescing_factor(), 1.0);
}

TEST(SimCoalescing, QuiescenceFlushDeliversBufferedParcels) {
  NetworkModel net;
  net.latency = 1e-3;
  net.bandwidth = 1e6;
  net.task_overhead = 0.0;
  SimExecutor ex(2, 1, SchedPolicy::kFifo, net, 1, coalesce_on(1000));
  std::atomic<int> ran{0};
  for (int i = 0; i < 3; ++i) {
    Task t;
    t.fn = [&ran] { ran.fetch_add(1); };
    ex.send(0, 1, 1000, std::move(t));  // 1 ms wire time each
  }
  ex.drain();
  EXPECT_EQ(ran.load(), 3);
  const CommStats s = ex.comm_stats();
  EXPECT_EQ(s.parcels, 3u);
  EXPECT_EQ(s.batches, 1u);
  EXPECT_EQ(s.flush_quiescence, 1u);
  // One batch: alpha + 3000 B / 1 MB/s = 1 ms + 3 ms.
  EXPECT_NEAR(ex.now(), 4e-3, 1e-9);
}

TEST(SimCoalescing, DeadlineTimerFlushesWhileWorkBlocks) {
  NetworkModel net;
  net.latency = 0.1;
  net.bandwidth = 1e6;
  net.task_overhead = 0.0;
  SimExecutor ex(2, 1, SchedPolicy::kFifo, net, 1,
                 coalesce_on(1000, 1 << 20, /*deadline=*/0.5));
  // A long task keeps the simulation live past the flush deadline, so the
  // timer event (not quiescence) must deliver the buffered parcel.
  Task busy;
  busy.items = {{kClsOther, 10.0}};
  ex.spawn(std::move(busy));
  double arrival = -1.0;
  Task t;
  t.fn = [&arrival, &ex] { arrival = ex.now(); };
  ex.send(0, 1, 100000, std::move(t));  // 0.1 s wire time
  ex.drain();
  // Timer fires at 0.5; occupancy = alpha + beta*bytes = 0.2 more.
  EXPECT_NEAR(arrival, 0.7, 1e-9);
  const CommStats s = ex.comm_stats();
  EXPECT_EQ(s.flush_deadline, 1u);
  EXPECT_NEAR(ex.now(), 10.0, 1e-9);  // the busy task dominates
}

TEST(SimCoalescing, StaleDeadlineTimerIsIgnored) {
  // Threshold flush happens before the deadline; the armed timer must be a
  // no-op (no double delivery, no phantom batch).
  SimExecutor ex(2, 1, SchedPolicy::kFifo, NetworkModel{0, 1e9, 0}, 1,
                 coalesce_on(2, 1 << 20, /*deadline=*/0.5));
  std::atomic<int> ran{0};
  for (int i = 0; i < 2; ++i) {
    Task t;
    t.fn = [&ran] { ran.fetch_add(1); };
    ex.send(0, 1, 100, std::move(t));
  }
  ex.drain();
  EXPECT_EQ(ran.load(), 2);
  const CommStats s = ex.comm_stats();
  EXPECT_EQ(s.batches, 1u);
  EXPECT_EQ(s.flush_threshold, 1u);
  EXPECT_EQ(s.flush_deadline, 0u);
}

TEST(SimCoalescing, ReducesNetworkTimeOnLatencyBoundTraffic) {
  // 100 tiny parcels on a 1 ms-alpha network: uncoalesced they serialize
  // 100 alphas on the destination NIC; coalesced they share one.
  NetworkModel net;
  net.latency = 1e-3;
  net.bandwidth = 1e9;
  net.task_overhead = 0.0;
  auto run = [&](CoalesceConfig c) {
    SimExecutor ex(2, 1, SchedPolicy::kFifo, net, 1, c);
    for (int i = 0; i < 100; ++i) {
      Task t;
      t.fn = [] {};
      ex.send(0, 1, 100, std::move(t));
    }
    ex.drain();
    return ex.now();
  };
  const double off = run(CoalesceConfig{});
  const double on = run(coalesce_on(100));
  EXPECT_GT(off, 0.099);  // ~100 serialized alphas
  EXPECT_LT(on, off / 20.0);
}

TEST(SimCoalescing, CommTraceMatchesBatchCounters) {
  SimExecutor ex(3, 1, SchedPolicy::kFifo, NetworkModel{1e-6, 1e9, 0}, 1,
                 coalesce_on(4));
  ex.trace().set_enabled(true);
  for (int i = 0; i < 24; ++i) {
    Task t;
    t.fn = [] {};
    ex.send(0, static_cast<std::uint32_t>(1 + i % 2), 50, std::move(t));
  }
  ex.drain();
  const CommStats s = ex.comm_stats();
  const auto wire = ex.trace().collect_comm();
  EXPECT_EQ(wire.size(), s.batches);
  std::uint64_t parcels = 0, bytes = 0;
  for (const CommEvent& e : wire) {
    EXPECT_EQ(e.src, 0u);
    EXPECT_GE(e.dst, 1u);
    EXPECT_GE(e.t1, e.t0);
    parcels += e.parcels;
    bytes += e.bytes;
  }
  EXPECT_EQ(parcels, s.parcels);
  EXPECT_EQ(bytes, s.bytes);
}

}  // namespace
}  // namespace amtfmm
