// Cross-rank trace merge tests: handcrafted 2-rank traces with a known
// clock skew.  The merge must correct rank 1's timestamps onto rank 0's
// timeline (making all cross-rank flows non-negative), FIFO-match the
// parcel send/recv instants into flows, and report a cross-rank critical
// path at least as long as any single rank's.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "runtime/trace.hpp"
#include "runtime/trace_export.hpp"
#include "runtime/trace_merge.hpp"
#include "runtime/trace_report.hpp"
#include "support/json.hpp"

namespace amtfmm {
namespace {

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

/// Writes one rank's trace: a task span, a parcel-send instant to the
/// peer, and a parcel-recv instant from the peer, with the given clock.
void write_rank_trace(const std::string& path, std::uint32_t rank,
                      const TraceClock& clock, double span_t0,
                      double span_t1, std::uint32_t edge, double send_t,
                      std::uint32_t dst, double recv_t, std::uint32_t src,
                      std::span<const std::uint32_t> edges) {
  const std::vector<TraceEvent> spans{{span_t0, span_t1, 0, 1, edge}};
  const std::vector<InstantEvent> instants{
      {send_t, 0, InstantKind::kParcelSend, dst},
      {recv_t, 0, InstantKind::kParcelRecv, src},
  };
  ChromeTraceOptions opt;
  opt.cores_per_locality = 1;
  opt.makespan = 0.01;
  opt.dag_edges = edges;
  opt.rank = rank;
  opt.world = 2;
  opt.clock = clock;
  ASSERT_TRUE(trace_export_chrome(path, spans, {}, instants, opt));
}

TEST(TraceMerge, CorrectsSkewedClocksAndFindsCrossRankPath) {
  // Rank 1's steady clock reads 0.5 s ahead of rank 0's (offset_s = 0.5,
  // as clock_sync measures it) and its trace origin differs too.  The
  // correction delta for rank 1 is
  //   (steady_origin_1 - offset_1) - (steady_origin_0 - offset_0)
  //     = (99.7 - 0.5) - (100.0 - 0.0) = -0.8 s.
  TraceClock c0;
  c0.steady_origin_s = 100.0;
  TraceClock c1;
  c1.steady_origin_s = 99.7;
  c1.offset_s = 0.5;
  c1.uncertainty_s = 2e-4;

  // Chained 2-edge DAG 0 -> 1 -> 2; rank 0 runs edge 0 (1 ms), rank 1
  // runs edge 1 (2 ms), so the merged critical path is 3 ms — longer
  // than either single rank's.
  const std::vector<std::uint32_t> edges{0, 1, 1, 2};

  // True (rank-0 timeline) story: rank 0 sends at 1.000, rank 1 receives
  // at 1.002; rank 1 sends back at 1.200, rank 0 receives at 1.203.
  // Rank-1 local times = rank-0 times - delta = + 0.8.
  const std::string p0 = tmp_path("merge_rank0.json");
  const std::string p1 = tmp_path("merge_rank1.json");
  write_rank_trace(p0, 0, c0, /*span*/ 0.100, 0.101, /*edge=*/0,
                   /*send_t=*/1.000, /*dst=*/1, /*recv_t=*/1.203,
                   /*src=*/1, edges);
  write_rank_trace(p1, 1, c1, /*span*/ 0.950, 0.952, /*edge=*/1,
                   /*send_t=*/2.000, /*dst=*/0, /*recv_t=*/1.802,
                   /*src=*/0, edges);

  const std::string out = tmp_path("merge_out.json");
  const TraceMergeReport r = trace_merge({p0, p1}, out);
  ASSERT_TRUE(r.valid) << r.error;
  EXPECT_EQ(r.world, 2u);
  ASSERT_EQ(r.ranks.size(), 2u);
  EXPECT_NEAR(r.ranks[1].delta_s, -0.8, 1e-9);
  EXPECT_NEAR(r.max_uncertainty_s, 2e-4, 1e-12);
  EXPECT_LT(r.max_uncertainty_s, 1e-3);

  // Both flows matched; corrected durations are the true 2 ms and 3 ms.
  // Without the clock correction the 1 -> 0 flow (local send 2.000,
  // remote recv 1.203) would be negative.
  EXPECT_EQ(r.cross_flows, 2u);
  EXPECT_EQ(r.unmatched_sends, 0u);
  EXPECT_EQ(r.negative_flows, 0u);
  EXPECT_NEAR(r.min_flow_s, 2e-3, 1e-9);
  EXPECT_NEAR(r.max_flow_s, 3e-3, 1e-9);

  // The merged DAG path (edge 0 on rank 0 + edge 1 on rank 1) dominates
  // every single-rank critical path.
  for (const auto& rank : r.ranks) {
    EXPECT_GE(r.critical_path_s, rank.critical_path_s);
  }
  EXPECT_NEAR(r.cross_critical_path_s, 3e-3, 1e-6);

  // The merged file itself must be a valid, analyzable Chrome trace with
  // synthesized cross-rank flow arrows.
  const TraceReport merged = analyze_trace_file(out);
  EXPECT_TRUE(merged.valid) << merged.error;
  std::string text;
  ASSERT_TRUE(read_file(out, text));
  JsonValue v;
  std::string err;
  ASSERT_TRUE(json_parse(text, v, err)) << err;
  const JsonValue* meta = v.find("amtfmm");
  ASSERT_NE(meta, nullptr);
  EXPECT_EQ(meta->num_or("world", 0.0), 2.0);
  int xflow_s = 0, xwire = 0;
  for (const JsonValue& e : v.find("traceEvents")->array) {
    if (e.str_or("name", "") == "xparcel" && e.str_or("ph", "") == "s") {
      ++xflow_s;
    }
    if (e.str_or("name", "") == "xwire") ++xwire;
  }
  EXPECT_EQ(xflow_s, 2);
  EXPECT_EQ(xwire, 2);
}

TEST(TraceMerge, UncorrectedSkewYieldsNegativeFlows) {
  // Same story but rank 1's metadata hides the offset (offset_s = 0):
  // the merge must still run, and flag the impossible flow instead of
  // silently producing a broken timeline.
  TraceClock c0;
  c0.steady_origin_s = 100.0;
  TraceClock c1;
  c1.steady_origin_s = 100.0;  // pretends to share rank 0's clock
  const std::vector<std::uint32_t> edges{0, 1};
  const std::string p0 = tmp_path("neg_rank0.json");
  const std::string p1 = tmp_path("neg_rank1.json");
  write_rank_trace(p0, 0, c0, 0.1, 0.101, 0, /*send*/ 1.000, 1,
                   /*recv*/ 2.500, 1, edges);
  write_rank_trace(p1, 1, c1, 0.1, 0.102, 0, /*send*/ 2.400, 0,
                   /*recv*/ 0.900, 0, edges);  // recv BEFORE the send
  const TraceMergeReport r =
      trace_merge({p0, p1}, tmp_path("neg_out.json"));
  ASSERT_TRUE(r.valid) << r.error;
  EXPECT_GT(r.negative_flows, 0u);
}

TEST(TraceMerge, RejectsDuplicateAndMissingInputs) {
  TraceClock c;
  const std::vector<std::uint32_t> edges{0, 1};
  const std::string p0 = tmp_path("dup_rank0.json");
  write_rank_trace(p0, 0, c, 0.1, 0.101, 0, 1.0, 1, 1.2, 1, edges);
  EXPECT_FALSE(trace_merge({p0, p0}, tmp_path("dup_out.json")).valid);
  EXPECT_FALSE(trace_merge({tmp_path("missing_in.json")},
                           tmp_path("missing_out.json"))
                   .valid);
  EXPECT_FALSE(trace_merge({}, tmp_path("empty_out.json")).valid);
}

}  // namespace
}  // namespace amtfmm
