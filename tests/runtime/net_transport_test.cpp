#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "runtime/net/frame.hpp"
#include "runtime/net/socket.hpp"
#include "runtime/net/transport.hpp"

namespace amtfmm::net {
namespace {

using namespace std::chrono_literals;

/// Fresh bootstrap directory per test, removed on destruction.
struct TempDir {
  TempDir() {
    static std::atomic<int> counter{0};
    path = std::filesystem::temp_directory_path() /
           ("amtfmm_nt_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter.fetch_add(1)));
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::filesystem::path path;
};

NetConfig config_for(std::uint32_t rank, std::uint32_t world,
                     const std::string& dir, TransportKind kind) {
  NetConfig cfg;
  cfg.rank = rank;
  cfg.world = world;
  cfg.kind = kind;
  cfg.dir = dir;
  cfg.connect_timeout_s = 10.0;
  return cfg;
}

std::vector<std::byte> bytes_of(const std::string& s) {
  std::vector<std::byte> v(s.size());
  std::memcpy(v.data(), s.data(), s.size());
  return v;
}

WireBatch one_parcel_batch(std::uint32_t src, std::uint32_t dst,
                           std::uint64_t seq, const std::string& text) {
  WireBatch b;
  b.src = src;
  b.dst = dst;
  b.seq = seq;
  b.coalesced = false;
  WireParcel p;
  p.kind = 1;
  p.payload = bytes_of(text);
  b.parcels.push_back(std::move(p));
  return b;
}

/// Thread-safe recorder for a transport's callbacks, with timed waits so
/// a broken transport fails the test instead of hanging it.
struct Sink {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<WireBatch> batches;
  std::vector<ControlMsg> controls;
  std::vector<std::string> failures;

  NetTransport::BatchFn batch_fn() {
    return [this](WireBatch&& b) {
      std::lock_guard<std::mutex> lk(mu);
      batches.push_back(std::move(b));
      cv.notify_all();
    };
  }
  NetTransport::ControlFn control_fn() {
    return [this](const ControlMsg& m) {
      std::lock_guard<std::mutex> lk(mu);
      controls.push_back(m);
      cv.notify_all();
    };
  }
  NetTransport::FailFn fail_fn() {
    return [this](const std::string& why) {
      std::lock_guard<std::mutex> lk(mu);
      failures.push_back(why);
      cv.notify_all();
    };
  }
  template <typename Pred>
  bool wait_for(Pred pred, std::chrono::seconds timeout = 10s) {
    std::unique_lock<std::mutex> lk(mu);
    return cv.wait_for(lk, timeout, [&] { return pred(); });
  }
};

/// Starts both ranks of a two-rank mesh concurrently (bootstrap blocks
/// until the full mesh is up, so the starts must overlap).
void start_pair(NetTransport& t0, NetTransport& t1) {
  std::thread peer([&] { t1.start(); });
  t0.start();
  peer.join();
}

class NetTransportPairTest : public ::testing::TestWithParam<TransportKind> {};

TEST_P(NetTransportPairTest, BatchesAndControlsRoundTripBothWays) {
  TempDir dir;
  Sink s0, s1;
  NetTransport t0(config_for(0, 2, dir.path, GetParam()), s0.batch_fn(),
                  s0.control_fn(), s0.fail_fn());
  NetTransport t1(config_for(1, 2, dir.path, GetParam()), s1.batch_fn(),
                  s1.control_fn(), s1.fail_fn());
  start_pair(t0, t1);

  ASSERT_TRUE(t0.post_batch(1, one_parcel_batch(0, 1, 0, "zero to one")));
  ASSERT_TRUE(t1.post_batch(0, one_parcel_batch(1, 0, 0, "one to zero")));
  ControlMsg probe;
  probe.type = static_cast<std::uint8_t>(ControlType::kProbe);
  probe.rank = 0;
  probe.a = 7;
  t0.post_control(1, probe);

  ASSERT_TRUE(s1.wait_for([&] { return s1.batches.size() == 1 &&
                                       s1.controls.size() == 1; }));
  ASSERT_TRUE(s0.wait_for([&] { return s0.batches.size() == 1; }));
  {
    std::lock_guard<std::mutex> lk(s1.mu);
    EXPECT_EQ(s1.batches[0].src, 0u);
    ASSERT_EQ(s1.batches[0].parcels.size(), 1u);
    EXPECT_EQ(s1.batches[0].parcels[0].payload, bytes_of("zero to one"));
    EXPECT_EQ(s1.controls[0].type,
              static_cast<std::uint8_t>(ControlType::kProbe));
    EXPECT_EQ(s1.controls[0].a, 7u);
  }

  // Orderly shutdown from both ends: no failure callbacks, and the
  // transport-level counters saw the traffic.
  t0.stop();
  t1.stop();
  EXPECT_FALSE(t0.failed()) << t0.failure_text();
  EXPECT_FALSE(t1.failed()) << t1.failure_text();
  EXPECT_GE(t0.stats().msgs_sent.load(), 1u);
  EXPECT_GE(t0.stats().msgs_recvd.load(), 1u);
  EXPECT_GT(t0.stats().wire_bytes_sent.load(), 0u);
  EXPECT_GT(t0.stats().wire_bytes_recvd.load(), 0u);
  EXPECT_GE(t0.stats().control_msgs.load(), 1u);
  {
    std::lock_guard<std::mutex> lk(s0.mu);
    EXPECT_TRUE(s0.failures.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Transports, NetTransportPairTest,
                         ::testing::Values(TransportKind::kUnix,
                                           TransportKind::kTcp),
                         [](const auto& info) {
                           return info.param == TransportKind::kUnix
                                      ? "unix"
                                      : "tcp";
                         });

TEST(NetTransport, BackpressureWindowBoundsInjectedBytesAndDrains) {
  TempDir dir;
  Sink s0, s1;
  auto cfg0 = config_for(0, 2, dir.path, TransportKind::kUnix);
  cfg0.window_bytes = 2048;  // a few frames at most
  NetTransport t0(cfg0, s0.batch_fn(), s0.control_fn(), s0.fail_fn());
  NetTransport t1(config_for(1, 2, dir.path, TransportKind::kUnix),
                  s1.batch_fn(), s1.control_fn(), s1.fail_fn());
  start_pair(t0, t1);

  // Far more bytes than the window: the posting thread must block and
  // resume as the progress engine drains, never drop or wedge.
  const int kBatches = 200;
  const std::string payload(1024, 'p');
  for (int i = 0; i < kBatches; ++i) {
    ASSERT_TRUE(t0.post_batch(1, one_parcel_batch(0, 1, i, payload)));
  }
  ASSERT_TRUE(s1.wait_for(
      [&] { return s1.batches.size() == static_cast<std::size_t>(kBatches); },
      30s));
  EXPECT_GT(t0.stats().backpressure_stalls.load(), 0u);
  // The high-water mark respects the window: one frame may be admitted
  // into an empty window regardless of size, so the bound is window plus
  // one frame's worth, not an exact ceiling.
  EXPECT_LE(t0.stats().inject_bytes_hwm.load(),
            cfg0.window_bytes + 2048);
  t0.stop();
  t1.stop();
  EXPECT_FALSE(t0.failed()) << t0.failure_text();
}

TEST(NetTransport, OrderlyPeerStopIsNotAFailure) {
  TempDir dir;
  Sink s0, s1;
  NetTransport t0(config_for(0, 2, dir.path, TransportKind::kUnix),
                  s0.batch_fn(), s0.control_fn(), s0.fail_fn());
  NetTransport t1(config_for(1, 2, dir.path, TransportKind::kUnix),
                  s1.batch_fn(), s1.control_fn(), s1.fail_fn());
  start_pair(t0, t1);

  // Rank 1 stops while rank 0 is still live and has NOT called
  // allow_peer_close: the goodbye announcement must make the EOF benign.
  t1.stop();
  std::this_thread::sleep_for(200ms);
  EXPECT_FALSE(t0.failed()) << t0.failure_text();
  {
    std::lock_guard<std::mutex> lk(s0.mu);
    EXPECT_TRUE(s0.failures.empty());
  }
  t0.stop();
}

TEST(NetTransport, PeerDeathFailsFastInsteadOfHanging) {
  TempDir dir;
  // The test plays rank 0 with a bare listener: accept rank 1's
  // connection, swallow its hello, then vanish without a goodbye —
  // exactly what a crashed process looks like from the outside.
  Fd listener = listen_unix((dir.path / "sock.0").string());

  Sink s1;
  NetTransport t1(config_for(1, 2, dir.path, TransportKind::kUnix),
                  s1.batch_fn(), s1.control_fn(), s1.fail_fn());
  std::thread starter([&] { t1.start(); });

  Fd conn;
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (!conn.valid()) {
    conn = accept_conn(listener);
    if (!conn.valid()) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "rank 1 never connected";
      std::this_thread::sleep_for(1ms);
    }
  }
  // Read rank 1's hello (one control frame) so its start() completes.
  std::size_t got = 0;
  std::byte buf[64];
  while (got < sizeof(FrameHeader) + sizeof(ControlMsg)) {
    IoResult r = read_some(conn, buf, sizeof(buf));
    ASSERT_TRUE(r.ok()) << r.error;
    ASSERT_FALSE(r.closed);
    got += r.bytes;
    if (r.bytes == 0) std::this_thread::sleep_for(1ms);
  }
  starter.join();

  conn.reset();  // abrupt close: EOF with no goodbye announcement

  ASSERT_TRUE(s1.wait_for([&] { return !s1.failures.empty(); }))
      << "peer death was never detected";
  EXPECT_TRUE(t1.failed());
  EXPECT_NE(t1.failure_text().find("closed"), std::string::npos)
      << t1.failure_text();
  // A failed transport drops further posts instead of blocking forever,
  // and stop() returns promptly on a dead mesh.
  EXPECT_FALSE(t1.post_batch(0, one_parcel_batch(1, 0, 0, "too late")));
  t1.stop();
}

TEST(NetTransport, WorldOfOneNeedsNoMesh) {
  TempDir dir;
  Sink s;
  NetTransport t(config_for(0, 1, dir.path, TransportKind::kUnix),
                 s.batch_fn(), s.control_fn(), s.fail_fn());
  t.start();  // no peers: nothing to bootstrap, no progress thread
  t.stop();
  EXPECT_FALSE(t.failed());
}

}  // namespace
}  // namespace amtfmm::net
