#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "runtime/counters.hpp"

namespace amtfmm {
namespace {

TEST(CounterRegistry, RegistrationReturnsStableIds) {
  CounterRegistry reg(2);
  const auto a = reg.counter("sched.tasks_run");
  const auto b = reg.counter("sched.steal_attempts");
  EXPECT_NE(a, b);
  // Re-registering an existing name returns the existing id.
  EXPECT_EQ(reg.counter("sched.tasks_run"), a);
  EXPECT_EQ(reg.find("sched.steal_attempts"), b);
  EXPECT_EQ(reg.find("no.such.metric"), CounterRegistry::kNoId);
}

TEST(CounterRegistry, DisabledUpdatesAreDropped) {
  CounterRegistry reg(1);
  const auto c = reg.counter("c");
  const auto g = reg.gauge("g");
  const auto h = reg.histogram("h");
  reg.add(0, c, 7);
  reg.gauge_max(0, g, 9);
  reg.observe(0, h, 3);
  const CounterSnapshot s = reg.snapshot();
  EXPECT_EQ(s.value("c"), 0u);
  EXPECT_EQ(s.value("g"), 0u);
  ASSERT_EQ(s.histograms.size(), 1u);
  EXPECT_EQ(s.histograms[0].count, 0u);
}

TEST(CounterRegistry, CountersSumAcrossWorkerShards) {
  CounterRegistry reg(4);
  const auto c = reg.counter("c");
  reg.set_enabled(true);
  for (int w = 0; w < 4; ++w) reg.add(w, c, static_cast<std::uint64_t>(w + 1));
  EXPECT_EQ(reg.snapshot().value("c"), 1u + 2 + 3 + 4);
  // Out-of-range worker ids (main thread, sim event loop) fold to shard 0.
  reg.add(99, c, 5);
  reg.add(-1, c, 5);
  EXPECT_EQ(reg.snapshot().value("c"), 20u);
}

TEST(CounterRegistry, GaugesMergeByMaximum) {
  CounterRegistry reg(3);
  const auto g = reg.gauge("depth_hw");
  reg.set_enabled(true);
  reg.gauge_max(0, g, 5);
  reg.gauge_max(1, g, 17);
  reg.gauge_max(2, g, 11);
  reg.gauge_max(1, g, 3);  // lower value must not regress the high-water
  EXPECT_EQ(reg.snapshot().value("depth_hw"), 17u);
}

TEST(CounterRegistry, HistogramBucketsAreLog2) {
  EXPECT_EQ(CounterRegistry::bucket_of(0), 0u);
  EXPECT_EQ(CounterRegistry::bucket_of(1), 0u);
  EXPECT_EQ(CounterRegistry::bucket_of(2), 1u);
  EXPECT_EQ(CounterRegistry::bucket_of(3), 1u);
  EXPECT_EQ(CounterRegistry::bucket_of(4), 2u);
  EXPECT_EQ(CounterRegistry::bucket_of(7), 2u);
  EXPECT_EQ(CounterRegistry::bucket_of(8), 3u);
  // Values past the last bucket boundary clamp into the final bucket.
  EXPECT_EQ(CounterRegistry::bucket_of(~0ull), CounterRegistry::kHistBuckets - 1);

  CounterRegistry reg(2);
  const auto h = reg.histogram("lat");
  reg.set_enabled(true);
  reg.observe(0, h, 1);
  reg.observe(0, h, 6);
  reg.observe(1, h, 6);
  const CounterSnapshot s = reg.snapshot();
  ASSERT_EQ(s.histograms.size(), 1u);
  EXPECT_EQ(s.histograms[0].count, 3u);
  EXPECT_EQ(s.histograms[0].sum, 13u);
  EXPECT_EQ(s.histograms[0].buckets[0], 1u);
  EXPECT_EQ(s.histograms[0].buckets[2], 2u);
}

TEST(CounterRegistry, ClearZeroesButKeepsRegistrations) {
  CounterRegistry reg(1);
  const auto c = reg.counter("c");
  reg.set_enabled(true);
  reg.add(0, c, 42);
  reg.clear();
  const CounterSnapshot s = reg.snapshot();
  EXPECT_EQ(s.value("c"), 0u);
  ASSERT_EQ(s.counters.size(), 1u);  // still registered
  EXPECT_EQ(reg.counter("c"), c);
}

// Concurrency hammer: many threads updating the same metrics through their
// own shards (and deliberately through a shared shard) while the registry
// is live.  Snapshot totals must be exact — run under TSan in CI.
TEST(CounterRegistry, ConcurrentUpdatesAreExact) {
  constexpr int kThreads = 8;
  constexpr std::uint64_t kIters = 50000;
  CounterRegistry reg(kThreads);
  const auto c = reg.counter("hits");
  const auto shared = reg.counter("shared_hits");
  const auto g = reg.gauge("peak");
  const auto h = reg.histogram("lat");
  reg.set_enabled(true);

  std::vector<std::thread> threads;
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      for (std::uint64_t i = 0; i < kIters; ++i) {
        reg.add(w, c);
        reg.add(0, shared);  // every thread hammers one shard
        reg.gauge_max(w, g, i);
        if ((i & 1023) == 0) reg.observe(w, h, i);
      }
    });
  }
  for (auto& t : threads) t.join();

  const CounterSnapshot s = reg.snapshot();
  EXPECT_EQ(s.value("hits"), kThreads * kIters);
  EXPECT_EQ(s.value("shared_hits"), kThreads * kIters);
  EXPECT_EQ(s.value("peak"), kIters - 1);
  std::uint64_t hist_count = 0;
  for (const auto& hist : s.histograms)
    if (hist.name == "lat") hist_count = hist.count;
  EXPECT_EQ(hist_count, kThreads * ((kIters + 1023) / 1024));
}

// Toggling enabled while workers update: no torn counts, no data race (the
// gate is a relaxed atomic).  The final total just has to be <= the number
// of attempted increments and stable after join.
TEST(CounterRegistry, ConcurrentEnableToggle) {
  CounterRegistry reg(4);
  const auto c = reg.counter("c");
  std::vector<std::thread> threads;
  for (int w = 0; w < 4; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < 20000; ++i) reg.add(w, c);
    });
  }
  for (int i = 0; i < 100; ++i) reg.set_enabled(i % 2 == 0);
  reg.set_enabled(true);
  for (auto& t : threads) t.join();
  EXPECT_LE(reg.snapshot().value("c"), 4u * 20000u);
}

}  // namespace
}  // namespace amtfmm
