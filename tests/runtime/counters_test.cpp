#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "runtime/counters.hpp"

namespace amtfmm {
namespace {

TEST(CounterRegistry, RegistrationReturnsStableIds) {
  CounterRegistry reg(2);
  const auto a = reg.counter("sched.tasks_run");
  const auto b = reg.counter("sched.steal_attempts");
  EXPECT_NE(a, b);
  // Re-registering an existing name returns the existing id.
  EXPECT_EQ(reg.counter("sched.tasks_run"), a);
  EXPECT_EQ(reg.find("sched.steal_attempts"), b);
  EXPECT_EQ(reg.find("no.such.metric"), CounterRegistry::kNoId);
}

TEST(CounterRegistry, DisabledUpdatesAreDropped) {
  CounterRegistry reg(1);
  const auto c = reg.counter("c");
  const auto g = reg.gauge("g");
  const auto h = reg.histogram("h");
  reg.add(0, c, 7);
  reg.gauge_max(0, g, 9);
  reg.observe(0, h, 3);
  const CounterSnapshot s = reg.snapshot();
  EXPECT_EQ(s.value("c"), 0u);
  EXPECT_EQ(s.value("g"), 0u);
  ASSERT_EQ(s.histograms.size(), 1u);
  EXPECT_EQ(s.histograms[0].count, 0u);
}

TEST(CounterRegistry, CountersSumAcrossWorkerShards) {
  CounterRegistry reg(4);
  const auto c = reg.counter("c");
  reg.set_enabled(true);
  for (int w = 0; w < 4; ++w) reg.add(w, c, static_cast<std::uint64_t>(w + 1));
  EXPECT_EQ(reg.snapshot().value("c"), 1u + 2 + 3 + 4);
  // Out-of-range worker ids (main thread, sim event loop) fold to shard 0.
  reg.add(99, c, 5);
  reg.add(-1, c, 5);
  EXPECT_EQ(reg.snapshot().value("c"), 20u);
}

TEST(CounterRegistry, GaugesMergeByMaximum) {
  CounterRegistry reg(3);
  const auto g = reg.gauge("depth_hw");
  reg.set_enabled(true);
  reg.gauge_max(0, g, 5);
  reg.gauge_max(1, g, 17);
  reg.gauge_max(2, g, 11);
  reg.gauge_max(1, g, 3);  // lower value must not regress the high-water
  EXPECT_EQ(reg.snapshot().value("depth_hw"), 17u);
}

TEST(CounterRegistry, HistogramBucketsAreLog2) {
  EXPECT_EQ(CounterRegistry::bucket_of(0), 0u);
  EXPECT_EQ(CounterRegistry::bucket_of(1), 0u);
  EXPECT_EQ(CounterRegistry::bucket_of(2), 1u);
  EXPECT_EQ(CounterRegistry::bucket_of(3), 1u);
  EXPECT_EQ(CounterRegistry::bucket_of(4), 2u);
  EXPECT_EQ(CounterRegistry::bucket_of(7), 2u);
  EXPECT_EQ(CounterRegistry::bucket_of(8), 3u);
  // Values past the last bucket boundary clamp into the final bucket.
  EXPECT_EQ(CounterRegistry::bucket_of(~0ull), CounterRegistry::kHistBuckets - 1);

  CounterRegistry reg(2);
  const auto h = reg.histogram("lat");
  reg.set_enabled(true);
  reg.observe(0, h, 1);
  reg.observe(0, h, 6);
  reg.observe(1, h, 6);
  const CounterSnapshot s = reg.snapshot();
  ASSERT_EQ(s.histograms.size(), 1u);
  EXPECT_EQ(s.histograms[0].count, 3u);
  EXPECT_EQ(s.histograms[0].sum, 13u);
  EXPECT_EQ(s.histograms[0].buckets[0], 1u);
  EXPECT_EQ(s.histograms[0].buckets[2], 2u);
}

TEST(CounterRegistry, ClearZeroesButKeepsRegistrations) {
  CounterRegistry reg(1);
  const auto c = reg.counter("c");
  reg.set_enabled(true);
  reg.add(0, c, 42);
  reg.clear();
  const CounterSnapshot s = reg.snapshot();
  EXPECT_EQ(s.value("c"), 0u);
  ASSERT_EQ(s.counters.size(), 1u);  // still registered
  EXPECT_EQ(reg.counter("c"), c);
}

// Concurrency hammer: many threads updating the same metrics through their
// own shards (and deliberately through a shared shard) while the registry
// is live.  Snapshot totals must be exact — run under TSan in CI.
TEST(CounterRegistry, ConcurrentUpdatesAreExact) {
  constexpr int kThreads = 8;
  constexpr std::uint64_t kIters = 50000;
  CounterRegistry reg(kThreads);
  const auto c = reg.counter("hits");
  const auto shared = reg.counter("shared_hits");
  const auto g = reg.gauge("peak");
  const auto h = reg.histogram("lat");
  reg.set_enabled(true);

  std::vector<std::thread> threads;
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      for (std::uint64_t i = 0; i < kIters; ++i) {
        reg.add(w, c);
        reg.add(0, shared);  // every thread hammers one shard
        reg.gauge_max(w, g, i);
        if ((i & 1023) == 0) reg.observe(w, h, i);
      }
    });
  }
  for (auto& t : threads) t.join();

  const CounterSnapshot s = reg.snapshot();
  EXPECT_EQ(s.value("hits"), kThreads * kIters);
  EXPECT_EQ(s.value("shared_hits"), kThreads * kIters);
  EXPECT_EQ(s.value("peak"), kIters - 1);
  std::uint64_t hist_count = 0;
  for (const auto& hist : s.histograms)
    if (hist.name == "lat") hist_count = hist.count;
  EXPECT_EQ(hist_count, kThreads * ((kIters + 1023) / 1024));
}

// Toggling enabled while workers update: no torn counts, no data race (the
// gate is a relaxed atomic).  The final total just has to be <= the number
// of attempted increments and stable after join.
TEST(CounterRegistry, ConcurrentEnableToggle) {
  CounterRegistry reg(4);
  const auto c = reg.counter("c");
  std::vector<std::thread> threads;
  for (int w = 0; w < 4; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < 20000; ++i) reg.add(w, c);
    });
  }
  for (int i = 0; i < 100; ++i) reg.set_enabled(i % 2 == 0);
  reg.set_enabled(true);
  for (auto& t : threads) t.join();
  EXPECT_LE(reg.snapshot().value("c"), 4u * 20000u);
}

// ---- histogram_quantile edge cases -------------------------------------

TEST(HistogramQuantile, EmptyHistogramIsZero) {
  CounterSnapshot::Histogram h;
  EXPECT_EQ(histogram_quantile(h, 0.0), 0.0);
  EXPECT_EQ(histogram_quantile(h, 0.5), 0.0);
  EXPECT_EQ(histogram_quantile(h, 1.0), 0.0);
}

TEST(HistogramQuantile, SingleBucketInterpolatesLinearly) {
  // Every observation in bucket 3 = [8, 16): quantiles sweep the bucket
  // linearly, never leaving [8, 16].
  CounterSnapshot::Histogram h;
  h.buckets[3] = 100;
  h.count = 100;
  EXPECT_NEAR(histogram_quantile(h, 0.5), 12.0, 0.2);
  EXPECT_GE(histogram_quantile(h, 0.0), 8.0);
  EXPECT_LE(histogram_quantile(h, 1.0), 16.0);
  // Quantiles outside [0, 1] clamp instead of reading out of range.
  EXPECT_LE(histogram_quantile(h, 2.0), 16.0);
  EXPECT_GE(histogram_quantile(h, -1.0), 8.0);
}

TEST(HistogramQuantile, TopBucketSaturationIsBounded) {
  // Observations beyond the largest bucket saturate into bucket 31; the
  // estimate stays within [2^31, 2^32] — the best bound a log2 histogram
  // can give — instead of diverging or overflowing.
  CounterSnapshot::Histogram h;
  h.buckets[31] = 10;
  h.count = 10;
  const double lo = static_cast<double>(1ull << 31);
  EXPECT_GE(histogram_quantile(h, 0.5), lo);
  EXPECT_LE(histogram_quantile(h, 1.0), 2.0 * lo);
}

TEST(HistogramQuantile, MergedShardsMatchSingleShardObservations) {
  // The same observations spread over 4 worker shards must produce the
  // identical snapshot histogram (bucket-wise sum) and hence identical
  // quantiles as observing them all from one worker.
  CounterRegistry sharded(4), single(1);
  const auto hs = sharded.histogram("lat");
  const auto h1 = single.histogram("lat");
  sharded.set_enabled(true);
  single.set_enabled(true);
  const std::uint64_t vals[] = {1, 3, 3, 9, 20, 100, 1000, 1001};
  for (int i = 0; i < 8; ++i) {
    sharded.observe(i % 4, hs, vals[i]);
    single.observe(0, h1, vals[i]);
  }
  const auto a = sharded.snapshot().histograms.at(0);
  const auto b = single.snapshot().histograms.at(0);
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.sum, b.sum);
  EXPECT_EQ(a.buckets, b.buckets);
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_EQ(histogram_quantile(a, q), histogram_quantile(b, q));
  }
  // Median of {1,3,3,9,20,100,1000,1001}: rank 4 of 8 exhausts buckets
  // [0,2) and [2,4) (cumulative 3) and lands on the 9 in bucket [8,16).
  EXPECT_GE(histogram_quantile(a, 0.5), 8.0);
  EXPECT_LE(histogram_quantile(a, 0.5), 16.0);
}

}  // namespace
}  // namespace amtfmm
