// Tests of the GAS slab heap: address round-trips, chunk growth, pointer
// stability, lock-free resolve under concurrent allocation, and the debug
// bounds checking.

#include "runtime/gas.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "runtime/thread_executor.hpp"

namespace amtfmm {
namespace {

std::unique_ptr<LCO> make_obj(Executor& ex) {
  return std::make_unique<SumLCO>(ex, 1);
}

TEST(GasTest, AllocResolveRoundTrip) {
  ThreadExecutor ex(2, 1);
  Gas gas(2);
  const GlobalAddress a = gas.alloc(0, make_obj(ex));
  const GlobalAddress b = gas.alloc(1, make_obj(ex));
  const GlobalAddress c = gas.alloc(0, make_obj(ex));
  EXPECT_EQ(a, (GlobalAddress{0, 0}));
  EXPECT_EQ(b, (GlobalAddress{1, 0}));
  EXPECT_EQ(c, (GlobalAddress{0, 1}));
  EXPECT_NE(gas.resolve(a), nullptr);
  EXPECT_NE(gas.resolve(a), gas.resolve(c));
  EXPECT_EQ(gas.objects_on(0), 2u);
  EXPECT_EQ(gas.objects_on(1), 1u);
}

TEST(GasTest, GrowsPastChunkBoundaryWithStablePointers) {
  ThreadExecutor ex(1, 1);
  Gas gas(1);
  const std::uint32_t n = 3 * Gas::kChunkSize + 17;
  std::vector<LCO*> seen;
  seen.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const GlobalAddress a = gas.alloc(0, make_obj(ex));
    ASSERT_EQ(a.slot, i);
    seen.push_back(gas.resolve(a));
  }
  // Later growth must not have moved earlier objects.
  for (std::uint32_t i = 0; i < n; ++i) {
    EXPECT_EQ(gas.resolve(GlobalAddress{0, i}), seen[i]);
  }
  EXPECT_EQ(gas.objects_on(0), n);
}

TEST(GasTest, ResetDestroysEverything) {
  ThreadExecutor ex(1, 1);
  Gas gas(1);
  for (int i = 0; i < 700; ++i) gas.alloc(0, make_obj(ex));
  gas.reset();
  EXPECT_EQ(gas.objects_on(0), 0u);
  // The heap is reusable after a reset.
  const GlobalAddress a = gas.alloc(0, make_obj(ex));
  EXPECT_EQ(a.slot, 0u);
  EXPECT_NE(gas.resolve(a), nullptr);
}

// Allocation on distinct localities runs concurrently while every thread
// resolves the addresses every other thread has already published — the
// DAG-instantiation access pattern.  Run under TSan in CI.
TEST(GasTest, ConcurrentAllocAndResolve) {
  constexpr int kLocalities = 4;
  constexpr std::uint32_t kPerLocality = 2 * Gas::kChunkSize + 5;
  ThreadExecutor ex(kLocalities, 1);
  Gas gas(kLocalities);
  std::atomic<std::uint32_t> published[kLocalities] = {};
  std::vector<std::thread> threads;
  for (int loc = 0; loc < kLocalities; ++loc) {
    threads.emplace_back([&, loc] {
      for (std::uint32_t i = 0; i < kPerLocality; ++i) {
        const GlobalAddress a =
            gas.alloc(static_cast<std::uint32_t>(loc), make_obj(ex));
        ASSERT_EQ(a.slot, i);
        published[loc].store(i + 1, std::memory_order_release);
        // Read everyone else's published prefix through the lock-free path.
        for (int other = 0; other < kLocalities; ++other) {
          const std::uint32_t n =
              published[other].load(std::memory_order_acquire);
          if (n == 0) continue;
          const GlobalAddress peek{static_cast<std::uint32_t>(other),
                                   (i * 7 + 3) % n};
          ASSERT_NE(gas.resolve(peek), nullptr);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int loc = 0; loc < kLocalities; ++loc) {
    EXPECT_EQ(gas.objects_on(static_cast<std::uint32_t>(loc)), kPerLocality);
  }
}

#if GTEST_HAS_DEATH_TEST
TEST(GasDeathTest, ResolveOfUnallocatedSlotAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ThreadExecutor ex(1, 1);
  Gas gas(1);
  gas.alloc(0, make_obj(ex));
  // Far past the allocated prefix: debug builds fail the bounds check,
  // release builds fail the unpublished-chunk check.
  EXPECT_DEATH(gas.resolve(GlobalAddress{0, 10 * Gas::kChunkSize}), "");
}
#endif

}  // namespace
}  // namespace amtfmm
