#include <gtest/gtest.h>

#include <atomic>

#include "runtime/sim_executor.hpp"
#include "runtime/thread_executor.hpp"

namespace amtfmm {
namespace {

TEST(ThreadExecutor, RunsAllSpawnedTasks) {
  ThreadExecutor ex(2, 2);
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i) {
    Task t;
    t.locality = static_cast<std::uint32_t>(i % 2);
    t.fn = [&count] { count.fetch_add(1); };
    ex.spawn(std::move(t));
  }
  ex.drain();
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadExecutor, TasksSpawnChildrenRecursively) {
  ThreadExecutor ex(1, 3);
  std::atomic<int> count{0};
  std::function<void(int)> fan = [&](int depth) {
    count.fetch_add(1);
    if (depth == 0) return;
    for (int i = 0; i < 2; ++i) {
      Task t;
      t.fn = [&fan, depth] { fan(depth - 1); };
      ex.spawn(std::move(t));
    }
  };
  Task root;
  root.fn = [&fan] { fan(6); };
  ex.spawn(std::move(root));
  ex.drain();
  EXPECT_EQ(count.load(), 127);  // 2^7 - 1
}

TEST(ThreadExecutor, TasksRunOnTheirLocality) {
  const int cores = 2;
  ThreadExecutor ex(3, cores);
  std::atomic<int> misplaced{0};
  for (int i = 0; i < 300; ++i) {
    Task t;
    t.locality = static_cast<std::uint32_t>(i % 3);
    t.fn = [&misplaced, want = i % 3, cores] {
      if (current_worker() / cores != want) misplaced.fetch_add(1);
    };
    ex.spawn(std::move(t));
  }
  ex.drain();
  EXPECT_EQ(misplaced.load(), 0)
      << "work stealing must stay within a locality";
}

TEST(ThreadExecutor, SendAccountsOnlyRemoteTraffic) {
  ThreadExecutor ex(2, 1);
  std::atomic<int> ran{0};
  Task a;
  a.fn = [&ran] { ran.fetch_add(1); };
  ex.send(0, 0, 1000, std::move(a));  // local: free
  Task b;
  b.fn = [&ran] { ran.fetch_add(1); };
  ex.send(0, 1, 1000, std::move(b));  // remote
  ex.drain();
  EXPECT_EQ(ran.load(), 2);
  EXPECT_EQ(ex.bytes_sent(), 1000u);
  EXPECT_EQ(ex.parcels_sent(), 1u);
}

TEST(ThreadExecutor, ScopedTraceRecordsOperatorEvents) {
  ThreadExecutor ex(1, 2);
  ex.trace().set_enabled(true);
  for (int i = 0; i < 10; ++i) {
    Task t;
    t.fn = [&ex] {
      ScopedTrace s(ex, 4);
      volatile double sink = 0;
      for (int j = 0; j < 1000; ++j) sink = sink + j;
    };
    ex.spawn(std::move(t));
  }
  ex.drain();
  const auto ev = ex.trace().collect();
  EXPECT_EQ(ev.size(), 10u);
  for (const auto& e : ev) {
    EXPECT_EQ(e.cls, 4);
    EXPECT_GE(e.t1, e.t0);
    EXPECT_LT(e.worker, 2u);
  }
}

TEST(SimExecutor, VirtualTimeReflectsCoreCount) {
  // 8 unit-cost tasks on 2 cores -> ~4 virtual seconds; on 8 cores -> ~1.
  for (const auto& [cores, expect] : {std::pair{2, 4.0}, {8, 1.0}}) {
    SimExecutor ex(1, cores, SchedPolicy::kFifo, NetworkModel{0, 1e18, 0});
    for (int i = 0; i < 8; ++i) {
      Task t;
      t.items = {{kClsOther, 1.0}};
      ex.spawn(std::move(t));
    }
    ex.drain();
    EXPECT_NEAR(ex.now(), expect, 1e-9) << cores << " cores";
  }
}

TEST(SimExecutor, DeterministicForFixedSeed) {
  auto run = [](std::uint64_t seed) {
    SimExecutor ex(2, 2, SchedPolicy::kWorkStealing, NetworkModel{}, seed);
    Rng rng(7);
    for (int i = 0; i < 50; ++i) {
      Task t;
      t.locality = static_cast<std::uint32_t>(i % 2);
      t.items = {{kClsOther, rng.uniform(0.1, 1.0)}};
      ex.spawn(std::move(t));
    }
    ex.drain();
    return ex.now();
  };
  EXPECT_EQ(run(3), run(3));
}

TEST(SimExecutor, NetworkLatencyAndBandwidthDelayDelivery) {
  // 1 GB at 1 GB/s + 1 ms latency: arrival at ~1.001 s.
  NetworkModel net;
  net.latency = 1e-3;
  net.bandwidth = 1e9;
  net.task_overhead = 0.0;
  SimExecutor ex(2, 1, SchedPolicy::kFifo, net);
  double arrival = -1;
  Task t;
  t.fn = [&arrival, &ex] { arrival = ex.now(); };
  ex.send(0, 1, 1000000000, std::move(t));
  ex.drain();
  EXPECT_NEAR(arrival, 1.001, 1e-9);
  EXPECT_EQ(ex.bytes_sent(), 1000000000u);
}

TEST(SimExecutor, NicSerializesSuccessiveSends) {
  NetworkModel net;
  net.latency = 0.0;
  net.bandwidth = 1e6;  // 1 MB/s
  net.task_overhead = 0.0;
  SimExecutor ex(2, 1, SchedPolicy::kFifo, net);
  std::vector<double> arrivals;
  for (int i = 0; i < 3; ++i) {
    Task t;
    t.fn = [&arrivals, &ex] { arrivals.push_back(ex.now()); };
    ex.send(0, 1, 1000000, std::move(t));  // 1 s of wire time each
  }
  ex.drain();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_NEAR(arrivals[0], 1.0, 1e-9);
  EXPECT_NEAR(arrivals[1], 2.0, 1e-9);
  EXPECT_NEAR(arrivals[2], 3.0, 1e-9);
}

TEST(SimExecutor, PriorityPolicyRunsHighFirst) {
  SimExecutor ex(1, 1, SchedPolicy::kPriority, NetworkModel{0, 1e18, 0});
  std::vector<int> order;
  // Seed a task that enqueues mixed-priority children while "running".
  Task seed;
  seed.items = {{kClsOther, 1.0}};
  seed.fn = [&ex, &order] {
    for (int i = 0; i < 3; ++i) {
      Task lo;
      lo.items = {{kClsOther, 1.0}};
      lo.fn = [&order, i] { order.push_back(i); };
      ex.spawn(std::move(lo));
    }
    Task hi;
    hi.high_priority = true;
    hi.items = {{kClsOther, 1.0}};
    hi.fn = [&order] { order.push_back(99); };
    ex.spawn(std::move(hi));
  };
  ex.spawn(std::move(seed));
  ex.drain();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order.front(), 99) << "high priority task must run first";
}

TEST(SimExecutor, TraceEventsCarryVirtualTimes) {
  SimExecutor ex(1, 2, SchedPolicy::kFifo, NetworkModel{0, 1e18, 0});
  ex.trace().set_enabled(true);
  for (int i = 0; i < 4; ++i) {
    Task t;
    t.items = {{2, 0.5}, {3, 0.25}};
    ex.spawn(std::move(t));
  }
  ex.drain();
  const auto ev = ex.trace().collect();
  EXPECT_EQ(ev.size(), 8u);
  double busy = 0;
  for (const auto& e : ev) busy += e.t1 - e.t0;
  EXPECT_NEAR(busy, 4 * 0.75, 1e-9);
  EXPECT_NEAR(ex.now(), 1.5, 1e-9);  // 3 virtual seconds over 2 cores
}

}  // namespace
}  // namespace amtfmm
