// Round-trip tests of the Chrome trace exporter and the trace_report
// analyzer: handcrafted event streams with known answers, plus end-to-end
// exports of a real simulated and a real threaded evaluation.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "geom/distributions.hpp"
#include "runtime/trace_export.hpp"
#include "runtime/trace_report.hpp"
#include "support/json.hpp"

namespace amtfmm {
namespace {

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

/// Parses the file and returns the traceEvents array (asserts on failure).
JsonValue parse_file(const std::string& path) {
  std::string text;
  EXPECT_TRUE(read_file(path, text));
  JsonValue v;
  std::string err;
  EXPECT_TRUE(json_parse(text, v, err)) << err;
  return v;
}

TEST(TraceExport, HandcraftedRoundTrip) {
  // Two localities of one core each: a 1 ms span attributed to edge 0 on
  // worker 0, an unattributed span on worker 1, one steal instant, and one
  // wire message 0 -> 1.
  const std::vector<TraceEvent> spans{
      {0.0, 1e-3, 0, 1, 0},
      {1e-3, 2e-3, 1, 5, kNoTraceArg},
  };
  const std::vector<InstantEvent> instants{
      {0.5e-3, 0, InstantKind::kSteal, 1},
  };
  const std::vector<CommEvent> comm{
      {0.2e-3, 0.8e-3, 0, 1, 3, 123},
  };
  const std::vector<std::uint32_t> edges{0, 1};

  ChromeTraceOptions opt;
  opt.cores_per_locality = 1;
  opt.makespan = 2e-3;
  opt.sim = true;
  opt.dag_edges = edges;
  const std::string path = tmp_path("handcrafted_trace.json");
  ASSERT_TRUE(trace_export_chrome(path, spans, comm, instants, opt));

  const JsonValue v = parse_file(path);
  const JsonValue* events = v.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  int tasks = 0, wires = 0, insts = 0, flow_s = 0, flow_f = 0;
  double last_ts = -1.0;
  bool edge_arg_seen = false;
  for (const JsonValue& e : events->array) {
    const std::string ph = e.str_or("ph", "");
    if (ph == "M") continue;
    const double ts = e.num_or("ts", -1.0);
    EXPECT_GE(ts, last_ts) << "timestamps must be non-decreasing";
    last_ts = ts;
    const std::string cat = e.str_or("cat", "");
    if (ph == "X" && cat == "task") {
      ++tasks;
      if (const JsonValue* args = e.find("args")) {
        edge_arg_seen |= args->num_or("edge", -1.0) == 0.0;
      }
    } else if (ph == "X" && cat == "comm") {
      ++wires;
      const JsonValue* args = e.find("args");
      ASSERT_NE(args, nullptr);
      EXPECT_EQ(args->num_or("parcels", 0.0), 3.0);
      EXPECT_EQ(args->num_or("bytes", 0.0), 123.0);
    } else if (ph == "i") {
      ++insts;
      EXPECT_EQ(e.str_or("name", ""), "steal");
    } else if (ph == "s") {
      ++flow_s;
    } else if (ph == "f") {
      ++flow_f;
    }
  }
  EXPECT_EQ(tasks, 2);
  EXPECT_EQ(wires, 1);
  EXPECT_EQ(insts, 1);
  EXPECT_EQ(flow_s, 1);
  EXPECT_EQ(flow_f, 1);
  EXPECT_TRUE(edge_arg_seen) << "span attribution (args.edge) missing";

  const TraceReport r = analyze_trace_file(path);
  EXPECT_TRUE(r.valid) << r.error;
  EXPECT_TRUE(r.sim);
  EXPECT_EQ(r.localities, 2);
  EXPECT_EQ(r.num_spans, 2u);
  EXPECT_EQ(r.num_comm, 1u);
  EXPECT_TRUE(r.monotonic_ok);
  EXPECT_TRUE(r.flows_paired);
  EXPECT_EQ(r.dag_edges, 1u);
  // Edge 0 carries the 1 ms span: the critical path is exactly that edge.
  EXPECT_EQ(r.critical_path_edges, 1u);
  EXPECT_NEAR(r.critical_path_seconds, 1e-3, 1e-9);
  EXPECT_EQ(r.instant_counts[static_cast<int>(InstantKind::kSteal)], 1u);
}

TEST(TraceExport, MultiEpochCriticalPathIsPerEpoch) {
  // Two resident epochs on the same 2-edge DAG: edge 0 carries a 1 ms span
  // in epoch 0 and a 3 ms span in epoch 1.  Per-epoch pathing must keep
  // the epochs apart (summing across epochs would report 4 ms, which no
  // single evaluation ever spent).
  const std::vector<TraceEvent> spans{
      {0.0, 1e-3, 0, 1, 0},
      {1.0, 1.003, 0, 1, 0},
  };
  const std::vector<double> epochs{0.0, 1.0};
  ChromeTraceOptions opt;
  opt.cores_per_locality = 1;
  opt.makespan = 3e-3;
  opt.sim = true;
  const std::vector<std::uint32_t> edges{0, 1};
  opt.dag_edges = edges;
  opt.epochs = epochs;
  const std::string path = tmp_path("multi_epoch_trace.json");
  ASSERT_TRUE(trace_export_chrome(path, spans, {}, {}, opt));

  const TraceReport r = analyze_trace_file(path);
  ASSERT_TRUE(r.valid) << r.error;
  ASSERT_EQ(r.epoch_starts.size(), 2u);
  EXPECT_DOUBLE_EQ(r.epoch_starts[0], 0.0);
  EXPECT_DOUBLE_EQ(r.epoch_starts[1], 1.0);
  ASSERT_EQ(r.epoch_critical_path_seconds.size(), 2u);
  EXPECT_NEAR(r.epoch_critical_path_seconds[0], 1e-3, 1e-9);
  EXPECT_NEAR(r.epoch_critical_path_seconds[1], 3e-3, 1e-9);
  // The headline number is the LARGEST epoch, bounded by the makespan.
  EXPECT_NEAR(r.critical_path_seconds, 3e-3, 1e-9);
  EXPECT_LE(r.critical_path_seconds, r.makespan * (1 + 1e-9));
}

TEST(TraceExport, ResidentPipelineTraceCarriesEpochs) {
  Rng rs(31), rt(32), rq(33);
  const auto sources = generate_points(Distribution::kCube, 1500, rs);
  const auto targets = generate_points(Distribution::kCube, 1500, rt);
  const auto charges = generate_charges(1500, rq, 0.1, 1.0);

  EvalConfig cfg;
  cfg.localities = 2;
  cfg.cores_per_locality = 2;
  cfg.trace = true;
  auto kernel = make_kernel("laplace");
  EvalPipeline pipe(*kernel, cfg, sources, targets);
  const EvalResult e1 = pipe.evaluate(charges);
  const EvalResult e2 = pipe.evaluate(charges);
  // Trace buffers accumulate across epochs: the epoch-2 collect holds
  // both evaluations' spans.
  ASSERT_GT(e2.trace.size(), e1.trace.size());

  ChromeTraceOptions opt;
  opt.cores_per_locality = cfg.cores_per_locality;
  opt.makespan = std::max(e1.makespan, e2.makespan);
  opt.sim = false;
  opt.dag_edges = e2.dag_edges;
  opt.epochs = pipe.epoch_start_times();
  const std::string path = tmp_path("pipeline_trace.json");
  ASSERT_TRUE(
      trace_export_chrome(path, e2.trace, e2.comm_trace, e2.instants, opt));

  const TraceReport rep = analyze_trace_file(path);
  ASSERT_TRUE(rep.valid) << rep.error;
  ASSERT_EQ(rep.epoch_starts.size(), 2u);
  EXPECT_LT(rep.epoch_starts[0], rep.epoch_starts[1]);
  ASSERT_EQ(rep.epoch_critical_path_seconds.size(), 2u);
  EXPECT_GT(rep.epoch_critical_path_seconds[0], 0.0);
  EXPECT_GT(rep.epoch_critical_path_seconds[1], 0.0);
  EXPECT_DOUBLE_EQ(rep.critical_path_seconds,
                   std::max(rep.epoch_critical_path_seconds[0],
                            rep.epoch_critical_path_seconds[1]));
}

TEST(TraceExport, MalformedFileIsInvalid) {
  const std::string path = tmp_path("malformed_trace.json");
  {
    JsonWriter w;
    w.begin_object();
    w.kv("traceEvents", "not an array");
    w.end_object();
    ASSERT_TRUE(w.write_file(path));
  }
  EXPECT_FALSE(analyze_trace_file(path).valid);
  EXPECT_FALSE(analyze_trace_file(tmp_path("no_such_file.json")).valid);
}

TEST(TraceExport, SimulatedRunEndToEnd) {
  Rng rs(7), rt(8);
  const auto sources = generate_points(Distribution::kCube, 3000, rs);
  const auto targets = generate_points(Distribution::kCube, 3000, rt);
  Evaluator eval(make_kernel("laplace"), {});

  SimConfig sim;
  sim.localities = 2;
  sim.cores_per_locality = 4;
  sim.cost = CostModel::paper("laplace");
  sim.coalesce.enabled = true;
  sim.trace = true;
  sim.counters = true;
  const SimResult r = eval.simulate(sources, targets, sim);
  ASSERT_FALSE(r.trace.empty());
  ASSERT_FALSE(r.dag_edges.empty());
  ASSERT_FALSE(r.counters.empty());

  ChromeTraceOptions opt;
  opt.cores_per_locality = sim.cores_per_locality;
  opt.makespan = r.virtual_time;
  opt.sim = true;
  opt.dag_edges = r.dag_edges;
  opt.counters = &r.counters;
  const std::string path = tmp_path("sim_trace.json");
  ASSERT_TRUE(
      trace_export_chrome(path, r.trace, r.comm_trace, r.instants, opt));

  const TraceReport rep = analyze_trace_file(path);
  ASSERT_TRUE(rep.valid) << rep.error;
  EXPECT_TRUE(rep.sim);
  EXPECT_EQ(rep.workers, r.total_cores);
  EXPECT_EQ(rep.num_spans, r.trace.size());
  EXPECT_EQ(rep.num_instants, r.instants.size());
  EXPECT_EQ(rep.num_comm, r.comm_trace.size());
  EXPECT_TRUE(rep.monotonic_ok);
  EXPECT_TRUE(rep.flows_paired);
  // Virtual time is noise free: the weighted critical path can never
  // exceed the simulated makespan.
  EXPECT_GT(rep.critical_path_seconds, 0.0);
  EXPECT_LE(rep.critical_path_seconds, rep.makespan * (1 + 1e-9));
  // Busy time fits in workers * window.
  EXPECT_LE(rep.busy_seconds,
            rep.workers * (rep.t_max - rep.t_min) * (1 + 1e-9) + 1e-9);
  // The counter snapshot survived the round trip.
  EXPECT_GT(rep.counters.value("sched.tasks_run"), 0u);
}

TEST(TraceExport, ThreadedRunEndToEnd) {
  Rng rs(9), rt(10), rq(11);
  const auto sources = generate_points(Distribution::kCube, 2000, rs);
  const auto targets = generate_points(Distribution::kCube, 2000, rt);
  const auto charges = generate_charges(2000, rq, 0.1, 1.0);

  EvalConfig cfg;
  cfg.localities = 2;
  cfg.cores_per_locality = 2;
  cfg.trace = true;
  cfg.counters = true;
  Evaluator eval(make_kernel("laplace"), cfg);
  const EvalResult r = eval.evaluate(sources, charges, targets);
  ASSERT_FALSE(r.trace.empty());
  ASSERT_FALSE(r.counters.empty());
  EXPECT_GT(r.counters.value("sched.tasks_run"), 0u);

  ChromeTraceOptions opt;
  opt.cores_per_locality = cfg.cores_per_locality;
  opt.makespan = r.makespan;
  opt.sim = false;
  opt.dag_edges = r.dag_edges;
  opt.counters = &r.counters;
  const std::string path = tmp_path("eval_trace.json");
  ASSERT_TRUE(
      trace_export_chrome(path, r.trace, r.comm_trace, r.instants, opt));

  const TraceReport rep = analyze_trace_file(path);
  ASSERT_TRUE(rep.valid) << rep.error;
  EXPECT_FALSE(rep.sim);
  EXPECT_EQ(rep.num_spans, r.trace.size());
  EXPECT_TRUE(rep.monotonic_ok);
  EXPECT_TRUE(rep.flows_paired);
  EXPECT_GT(rep.busy_seconds, 0.0);
}

}  // namespace
}  // namespace amtfmm
