#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "runtime/net/frame.hpp"

namespace amtfmm::net {
namespace {

std::vector<std::byte> bytes_of(const std::string& s) {
  std::vector<std::byte> v(s.size());
  std::memcpy(v.data(), s.data(), s.size());
  return v;
}

WireBatch sample_batch() {
  WireBatch b;
  b.src = 2;
  b.dst = 5;
  b.seq = 41;
  b.reason = 3;
  b.any_high = true;
  b.coalesced = true;
  WireParcel p0;
  p0.kind = 1;
  p0.high = true;
  p0.payload = bytes_of("hello parcel");
  WireParcel p1;
  p1.kind = 2;
  p1.payload = bytes_of("");
  WireParcel p2;
  p2.kind = 0x10;
  p2.payload = bytes_of(std::string(1000, 'x'));
  b.parcels = {p0, p1, p2};
  return b;
}

/// Feeds `wire` to a decoder in chunks of `step` bytes and returns every
/// frame that comes out — the torn-read path a socket produces.
std::vector<FrameDecoder::Frame> decode_chunked(
    const std::vector<std::byte>& wire, std::size_t step) {
  FrameDecoder d;
  std::vector<FrameDecoder::Frame> out;
  for (std::size_t off = 0; off < wire.size(); off += step) {
    const std::size_t n = std::min(step, wire.size() - off);
    d.feed(wire.data() + off, n);
    while (auto f = d.next()) out.push_back(std::move(*f));
  }
  EXPECT_FALSE(d.failed()) << d.error();
  return out;
}

TEST(Crc32, MatchesIeeeCheckVector) {
  // The canonical IEEE 802.3 check value for the ASCII digits 1-9.
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0u);
}

TEST(FrameCodec, BatchRoundTripsThroughWireBytes) {
  const WireBatch b = sample_batch();
  const auto wire = encode_batch_frame(b);
  FrameDecoder d;
  d.feed(wire.data(), wire.size());
  auto f = d.next();
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->kind, FrameKind::kBatch);
  std::string err;
  auto got = decode_batch(f->payload, &err);
  ASSERT_TRUE(got.has_value()) << err;
  EXPECT_EQ(got->src, b.src);
  EXPECT_EQ(got->dst, b.dst);
  EXPECT_EQ(got->seq, b.seq);
  EXPECT_EQ(got->reason, b.reason);
  EXPECT_EQ(got->any_high, b.any_high);
  EXPECT_EQ(got->coalesced, b.coalesced);
  ASSERT_EQ(got->parcels.size(), b.parcels.size());
  for (std::size_t i = 0; i < b.parcels.size(); ++i) {
    EXPECT_EQ(got->parcels[i].kind, b.parcels[i].kind);
    EXPECT_EQ(got->parcels[i].high, b.parcels[i].high);
    EXPECT_EQ(got->parcels[i].payload, b.parcels[i].payload);
  }
  EXPECT_EQ(got->payload_bytes(), b.payload_bytes());
}

TEST(FrameCodec, ControlRoundTripsEveryType) {
  for (std::uint8_t t = 1; t <= 5; ++t) {
    ControlMsg m;
    m.type = t;
    m.rank = 7;
    m.a = 0x0102030405060708ull;
    m.b = 42;
    m.c = ~0ull;
    const auto wire = encode_control_frame(m);
    FrameDecoder d;
    d.feed(wire.data(), wire.size());
    auto f = d.next();
    ASSERT_TRUE(f.has_value());
    EXPECT_EQ(f->kind, FrameKind::kControl);
    std::string err;
    auto got = decode_control(f->payload, &err);
    ASSERT_TRUE(got.has_value()) << err;
    EXPECT_EQ(got->type, t);
    EXPECT_EQ(got->rank, m.rank);
    EXPECT_EQ(got->a, m.a);
    EXPECT_EQ(got->b, m.b);
    EXPECT_EQ(got->c, m.c);
  }
}

TEST(FrameDecoder, ReassemblesFramesFromTornReads) {
  // Several frames back to back, delivered at every chunk granularity
  // down to one byte at a time — partial reads are the normal case.
  std::vector<std::byte> wire;
  const auto b = encode_batch_frame(sample_batch());
  ControlMsg m;
  m.type = static_cast<std::uint8_t>(ControlType::kProbe);
  m.a = 9;
  const auto c = encode_control_frame(m);
  for (int i = 0; i < 3; ++i) {
    wire.insert(wire.end(), b.begin(), b.end());
    wire.insert(wire.end(), c.begin(), c.end());
  }
  for (const std::size_t step : {1ul, 2ul, 3ul, 7ul, 16ul, 64ul, 1024ul}) {
    auto frames = decode_chunked(wire, step);
    ASSERT_EQ(frames.size(), 6u) << "step=" << step;
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(frames[2 * i].kind, FrameKind::kBatch);
      EXPECT_EQ(frames[2 * i + 1].kind, FrameKind::kControl);
    }
  }
}

TEST(FrameDecoder, CompactionSurvivesManySmallFrames) {
  // Enough traffic to trigger the internal buffer compaction repeatedly.
  ControlMsg m;
  m.type = static_cast<std::uint8_t>(ControlType::kAck);
  const auto c = encode_control_frame(m);
  FrameDecoder d;
  std::size_t got = 0;
  for (int i = 0; i < 2000; ++i) {
    d.feed(c.data(), c.size());
    while (d.next()) ++got;
  }
  EXPECT_EQ(got, 2000u);
  EXPECT_FALSE(d.failed());
  EXPECT_EQ(d.buffered(), 0u);
}

TEST(FrameDecoder, MalformedHeadersFailSticky) {
  struct Case {
    const char* name;
    std::size_t flip_off;  ///< byte to corrupt in a valid frame
  };
  // Corrupting any header byte must either break the magic or the CRC;
  // both land in the sticky error state without reading the payload.
  const auto wire = encode_batch_frame(sample_batch());
  for (std::size_t off = 0; off < sizeof(FrameHeader); ++off) {
    auto bad = wire;
    bad[off] ^= std::byte{0x5a};
    FrameDecoder d;
    d.feed(bad.data(), bad.size());
    auto f = d.next();
    EXPECT_FALSE(f.has_value()) << "header byte " << off;
    EXPECT_TRUE(d.failed()) << "header byte " << off;
    // Sticky: feeding good bytes afterwards cannot resurrect the stream.
    d.feed(wire.data(), wire.size());
    EXPECT_FALSE(d.next().has_value());
    EXPECT_TRUE(d.failed());
  }
}

TEST(FrameDecoder, TruncatedStreamYieldsNothingAndNoError) {
  // A prefix of a valid frame is not an error — just an incomplete read.
  const auto wire = encode_batch_frame(sample_batch());
  for (const std::size_t keep : {0ul, 1ul, 15ul, 16ul, wire.size() - 1}) {
    FrameDecoder d;
    d.feed(wire.data(), keep);
    EXPECT_FALSE(d.next().has_value()) << "keep=" << keep;
    EXPECT_FALSE(d.failed()) << "keep=" << keep;
  }
}

TEST(BatchDecode, MalformedPayloadsRejectedWithoutUB) {
  const auto good_frame = encode_batch_frame(sample_batch());
  const std::span<const std::byte> good(
      good_frame.data() + sizeof(FrameHeader),
      good_frame.size() - sizeof(FrameHeader));
  std::string err;
  ASSERT_TRUE(decode_batch(good, &err).has_value());

  struct Case {
    const char* name;
    std::vector<std::byte> payload;
  };
  std::vector<Case> cases;
  cases.push_back({"empty", {}});
  cases.push_back({"short header", std::vector<std::byte>(16)});
  {  // parcel count far beyond the bytes present
    std::vector<std::byte> p(good.begin(), good.end());
    const std::uint32_t huge = 0x7fffffff;
    std::memcpy(p.data() + 16, &huge, 4);
    cases.push_back({"hostile parcel count", std::move(p)});
  }
  {  // truncated mid-parcel
    std::vector<std::byte> p(good.begin(), good.end() - 10);
    cases.push_back({"truncated parcel payload", std::move(p)});
  }
  {  // trailing garbage after the declared parcels
    std::vector<std::byte> p(good.begin(), good.end());
    p.push_back(std::byte{0});
    cases.push_back({"trailing garbage", std::move(p)});
  }
  {  // declared payload_bytes disagrees with the parcels
    std::vector<std::byte> p(good.begin(), good.end());
    const std::uint64_t wrong = 1;
    std::memcpy(p.data() + 24, &wrong, 8);
    cases.push_back({"payload_bytes mismatch", std::move(p)});
  }
  {  // one parcel's length field points past the end
    std::vector<std::byte> p(good.begin(), good.end());
    const std::uint32_t big = 0x00ffffff;
    std::memcpy(p.data() + 32, &big, 4);  // first parcel header
    cases.push_back({"parcel length overruns", std::move(p)});
  }
  for (auto& c : cases) {
    err.clear();
    auto got = decode_batch(c.payload, &err);
    EXPECT_FALSE(got.has_value()) << c.name;
    EXPECT_FALSE(err.empty()) << c.name;
  }
}

TEST(BatchDecode, RandomizedMutationsNeverCrash) {
  // Fuzz-style sweep: random single- and multi-byte mutations of a valid
  // batch payload must decode or be rejected, never misbehave.  Run under
  // ASan in CI, this is the no-UB guarantee for hostile input.
  const auto frame = encode_batch_frame(sample_batch());
  const std::vector<std::byte> good(frame.begin() + sizeof(FrameHeader),
                                    frame.end());
  std::mt19937 rng(12345);
  std::uniform_int_distribution<std::size_t> pos(0, good.size() - 1);
  std::uniform_int_distribution<int> val(0, 255);
  for (int iter = 0; iter < 2000; ++iter) {
    auto p = good;
    const int flips = 1 + iter % 4;
    for (int f = 0; f < flips; ++f) {
      p[pos(rng)] = static_cast<std::byte>(val(rng));
    }
    std::string err;
    (void)decode_batch(p, &err);  // outcome irrelevant; must not misbehave
  }
}

TEST(ControlDecode, RejectsWrongSizeAndUnknownType) {
  std::string err;
  EXPECT_FALSE(decode_control(std::vector<std::byte>(31), &err).has_value());
  EXPECT_FALSE(decode_control(std::vector<std::byte>(33), &err).has_value());
  // Type 0 and types past kPong are invalid.
  for (const std::uint8_t t : {0, 8, 9, 255}) {
    ControlMsg m;
    m.type = t;
    auto wire = encode_control_frame(m);
    const std::span<const std::byte> payload(wire.data() + sizeof(FrameHeader),
                                             wire.size() - sizeof(FrameHeader));
    err.clear();
    EXPECT_FALSE(decode_control(payload, &err).has_value()) << unsigned(t);
    EXPECT_FALSE(err.empty()) << unsigned(t);
  }
}

TEST(FrameCodec, OversizedPayloadRejectedAtBothEnds) {
  // encode_frame refuses to build an illegal frame...
  std::vector<std::byte> big;
  EXPECT_THROW(
      {
        std::vector<std::byte> huge(kMaxFramePayload + 1ull);
        encode_frame(FrameKind::kBatch, huge);
      },
      net_error);
  // ...and a hand-forged header announcing one is rejected by the decoder
  // before any allocation happens.
  std::vector<std::byte> h(sizeof(FrameHeader));
  const std::uint32_t magic = kFrameMagic;
  std::memcpy(h.data(), &magic, 4);
  h[4] = std::byte{1};  // kBatch
  const std::uint32_t len = kMaxFramePayload + 1;
  std::memcpy(h.data() + 8, &len, 4);
  const std::uint32_t crc = crc32(h.data(), 12);
  std::memcpy(h.data() + 12, &crc, 4);
  FrameDecoder d;
  d.feed(h.data(), h.size());
  EXPECT_FALSE(d.next().has_value());
  EXPECT_TRUE(d.failed());
}

}  // namespace
}  // namespace amtfmm::net
