// Gravity scenario: the potential of a Plummer star cluster — the classic
// Barnes-Hut workload the paper's HMM framework generalizes.  Compares the
// Barnes-Hut method against the advanced FMM on the same tree
// infrastructure, reporting total potential energy, accuracy against direct
// summation, and the binding-energy profile by radius.
//
//   ./examples/gravity_plummer [--n 30000] [--theta 0.5]

#include <algorithm>
#include <cstdio>

#include "core/evaluator.hpp"
#include "geom/distributions.hpp"
#include "support/cli.hpp"
#include "support/timer.hpp"

using namespace amtfmm;

int main(int argc, char** argv) {
  Cli cli("gravity_plummer: Barnes-Hut vs FMM on a Plummer star cluster");
  cli.add_flag("n", static_cast<std::int64_t>(30000), "number of stars");
  cli.add_flag("theta", 0.5, "Barnes-Hut opening angle");
  cli.parse(argc, argv);
  const auto n = static_cast<std::size_t>(cli.i64("n"));

  Rng rng(7);
  const auto stars = generate_points(Distribution::kPlummer, n, rng);
  const std::vector<double> mass(n, 1.0 / static_cast<double>(n));

  auto run = [&](Method method) {
    EvalConfig cfg;
    cfg.method = method;
    cfg.bh_theta = cli.f64("theta");
    cfg.threshold = 40;
    cfg.localities = 1;
    cfg.cores_per_locality = 2;
    Evaluator eval(make_kernel("laplace"), cfg);
    Timer t;
    EvalResult r = eval.evaluate(stars, mass, stars);
    std::printf("%-14s  %8.3f s   DAG %8zu nodes %9zu edges\n",
                to_string(method), t.seconds(), r.dag.total_nodes,
                r.dag.total_edges);
    return r.potentials;
  };

  std::printf("Plummer cluster, N = %zu equal-mass stars (G = M = 1)\n\n", n);
  const auto phi_bh = run(Method::kBarnesHut);
  const auto phi_fmm = run(Method::kFmmAdvanced);

  // Reference on a sample (direct summation on everything is O(N^2)).
  const std::size_t sample = std::min<std::size_t>(300, n);
  std::vector<Vec3> probe(stars.begin(), stars.begin() + static_cast<long>(sample));
  auto kernel = make_kernel("laplace");
  const auto exact = direct_sum(*kernel, stars, mass, probe);
  auto sample_err = [&](const std::vector<double>& phi) {
    double num = 0, den = 0;
    for (std::size_t i = 0; i < sample; ++i) {
      num += (phi[i] - exact[i]) * (phi[i] - exact[i]);
      den += exact[i] * exact[i];
    }
    return std::sqrt(num / den);
  };
  std::printf("\nsample accuracy vs direct:  BH %.2e   FMM %.2e\n",
              sample_err(phi_bh), sample_err(phi_fmm));

  // Total potential energy: W = -1/2 sum_i m_i phi(x_i) (self term removed
  // by the kernels' r->0 convention).  Plummer closed form: W = -3 pi/32 *
  // G M^2 / a with a = 0.1 here -> W ~ -2.945.
  double w_bh = 0, w_fmm = 0;
  for (std::size_t i = 0; i < n; ++i) {
    w_bh -= 0.5 * mass[i] * phi_bh[i];
    w_fmm -= 0.5 * mass[i] * phi_fmm[i];
  }
  std::printf("potential energy:  BH %.4f   FMM %.4f   (Plummer analytic "
              "-3pi/32/a = %.4f)\n",
              w_bh, w_fmm, -3.0 * 3.14159265358979 / 32.0 / 0.1);

  // Binding-energy profile by radius (center at 0.5^3).
  std::printf("\n%12s %14s %14s\n", "radius", "<phi> FMM", "stars inside");
  const Vec3 c{0.5, 0.5, 0.5};
  for (double r : {0.05, 0.1, 0.2, 0.4, 0.8}) {
    double acc = 0;
    std::size_t inside = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if ((stars[i] - c).norm() < r) {
        acc += phi_fmm[i];
        ++inside;
      }
    }
    std::printf("%12.2f %14.4f %14zu\n", r,
                inside ? acc / static_cast<double>(inside) : 0.0, inside);
  }
  return 0;
}
