// Quickstart: evaluate the Coulomb potential of 20k random charges at 20k
// target points with the advanced (merge-and-shift) FMM, and check the
// result against direct summation on a sample.
//
//   ./examples/quickstart [--n 20000] [--kernel laplace] [--method fmm-advanced]

#include <cstdio>

#include "core/evaluator.hpp"
#include "geom/distributions.hpp"
#include "support/cli.hpp"
#include "support/timer.hpp"

using namespace amtfmm;

int main(int argc, char** argv) {
  Cli cli("quickstart: evaluate an N-body potential with the AMT-based FMM");
  cli.add_flag("n", static_cast<std::int64_t>(20000), "number of sources/targets");
  cli.add_flag("kernel", std::string("laplace"), "laplace|yukawa");
  cli.add_flag("method", std::string("fmm-advanced"), "fmm|fmm-advanced|bh");
  cli.add_flag("threshold", static_cast<std::int64_t>(60), "refinement threshold");
  cli.parse(argc, argv);
  const auto n = static_cast<std::size_t>(cli.i64("n"));

  // 1. Make some data: sources and targets both uniform in the unit cube,
  //    drawn independently (a "distinct ensembles" dual-tree problem).
  Rng rng(42);
  const auto sources = generate_points(Distribution::kCube, n, rng);
  const auto targets = generate_points(Distribution::kCube, n, rng);
  const auto charges = generate_charges(n, rng, 0.1, 1.0);

  // 2. Configure the evaluator.  The kernel, method, accuracy, and the
  //    execution substrate are all plain parameters; no runtime knowledge
  //    is needed (the DASHMM design goal).
  EvalConfig cfg;
  cfg.method = parse_method(cli.str("method"));
  cfg.threshold = static_cast<int>(cli.i64("threshold"));
  cfg.digits = 3;
  cfg.localities = 2;          // two logical localities in this process
  cfg.cores_per_locality = 2;  // each with two scheduler threads
  Evaluator evaluator(make_kernel(cli.str("kernel"), /*yukawa_lambda=*/1.0),
                      cfg);

  // 3. Evaluate.
  Timer timer;
  const EvalResult result = evaluator.evaluate(sources, charges, targets);
  std::printf("evaluated %zu potentials in %.3f s "
              "(setup %.3f s, DAG evaluation %.3f s)\n",
              n, timer.seconds(), result.setup_time, result.makespan);
  std::printf("DAG: %zu nodes, %zu edges; %llu parcels, %.2f MB between "
              "localities\n",
              result.dag.total_nodes, result.dag.total_edges,
              static_cast<unsigned long long>(result.parcels_sent),
              static_cast<double>(result.bytes_sent) / 1e6);

  // 4. Verify a sample against direct summation.
  const std::size_t sample = std::min<std::size_t>(200, n);
  std::vector<Vec3> probe(targets.begin(),
                          targets.begin() + static_cast<long>(sample));
  const auto exact = direct_sum(evaluator.kernel(), sources, charges, probe);
  double num = 0, den = 0;
  for (std::size_t i = 0; i < sample; ++i) {
    num += (result.potentials[i] - exact[i]) * (result.potentials[i] - exact[i]);
    den += exact[i] * exact[i];
  }
  std::printf("relative L2 error on a %zu-target sample: %.2e "
              "(3-digit accuracy requested)\n",
              sample, std::sqrt(num / den));
  return 0;
}
