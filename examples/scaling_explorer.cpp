// Scaling explorer: an interactive front end to the discrete-event cluster
// simulation.  Pick a distribution, kernel, core count and scheduler policy
// and get the predicted evaluation time, parallel efficiency, utilization
// summary, and network traffic — the tool version of the paper's section V
// methodology.
//
//   ./examples/scaling_explorer --dist sphere --kernel yukawa --cores 1024
//   ./examples/scaling_explorer --policy priority   # section VI's fix

#include <cstdio>

#include "../bench/common.hpp"
#include "core/evaluator.hpp"
#include "geom/distributions.hpp"
#include "support/cli.hpp"

using namespace amtfmm;

int main(int argc, char** argv) {
  Cli cli("scaling_explorer: predict FMM scaling on a simulated cluster");
  cli.add_flag("n", static_cast<std::int64_t>(500000), "points per ensemble");
  cli.add_flag("dist", std::string("cube"), "cube|sphere|plummer");
  cli.add_flag("kernel", std::string("laplace"), "laplace|yukawa");
  cli.add_flag("cores", static_cast<std::int64_t>(512), "total cores (32/locality)");
  cli.add_flag("policy", std::string("worksteal"), "worksteal|fifo|priority");
  cli.add_flag("threshold", static_cast<std::int64_t>(60), "refinement threshold");
  cli.add_flag("cost-profile", std::string("paper"), "paper|host");
  bench::add_trace_out_flag(cli);
  cli.parse(argc, argv);

  const auto n = static_cast<std::size_t>(cli.i64("n"));
  const int cores = static_cast<int>(cli.i64("cores"));
  Rng rs(1), rt(2);
  const auto dist = parse_distribution(cli.str("dist"));
  const auto sources = generate_points(dist, n, rs);
  const auto targets = generate_points(dist, n, rt);

  EvalConfig cfg;
  cfg.threshold = static_cast<int>(cli.i64("threshold"));
  Evaluator eval(make_kernel(cli.str("kernel"), 2.0), cfg);

  SimConfig sim;
  sim.cores_per_locality = 32;
  sim.trace = true;
  sim.counters = true;
  if (cli.str("policy") == "fifo") {
    sim.policy = SchedPolicy::kFifo;
  } else if (cli.str("policy") == "priority") {
    sim.split_priority = true;
  }
  if (cli.str("cost-profile") == "host") {
    auto probe = make_kernel(cli.str("kernel"), 2.0);
    probe->setup(1.0, 8, 3);
    sim.cost = CostModel::measured(*probe);
  } else {
    sim.cost = CostModel::paper(cli.str("kernel"));
  }

  std::printf("simulating %s/%s, %zu points, threshold %ld, policy %s\n",
              cli.str("dist").c_str(), cli.str("kernel").c_str(), n,
              cli.i64("threshold"), cli.str("policy").c_str());

  // Reference run at one locality, then the requested core count.
  sim.localities = 1;
  const SimResult base = eval.simulate(sources, targets, sim);
  double t32 = base.virtual_time;
  SimResult r = base;
  if (cores > 32) {
    sim.localities = cores / 32;
    r = eval.simulate(sources, targets, sim);
  }

  std::printf("\n  predicted evaluation time: %10.4f s on %d cores\n",
              r.virtual_time, cores);
  std::printf("  speedup vs 32 cores:       %10.2f  (efficiency %.1f%%)\n",
              t32 / r.virtual_time,
              100.0 * t32 / r.virtual_time / (cores / 32.0));
  std::printf("  DAG:                       %zu nodes, %zu edges "
              "(%.1f%% remote)\n",
              r.dag.total_nodes, r.dag.total_edges,
              100.0 * static_cast<double>(r.dag.remote_edges) /
                  static_cast<double>(std::max<std::size_t>(1, r.dag.total_edges)));
  std::printf("  network:                   %.2f GB in %llu parcels\n",
              static_cast<double>(r.bytes_sent) / 1e9,
              static_cast<unsigned long long>(r.parcels_sent));

  const UtilizationProfile u =
      utilization(r.trace, 0.0, r.virtual_time, 20, r.total_cores);
  std::printf("  utilization (20 intervals):");
  for (double f : u.total) std::printf(" %3.0f%%", 100.0 * f);
  std::printf("\n");
  if (!bench::export_trace_if_requested(cli, r, 32)) return 1;
  return 0;
}
