// Screened-Coulomb scenario: ions on a membrane-like spherical surface in
// an electrolyte.  The Yukawa kernel e^{-lambda r}/r models Debye
// screening; sweeping lambda shows the far field collapsing and, with it,
// the shrinking of the intermediate expansions the paper's scale-variant
// kernel discussion describes (the expansion length depends on depth and
// screening).
//
//   ./examples/screened_coulomb [--n 15000]

#include <cstdio>

#include "core/evaluator.hpp"
#include "geom/distributions.hpp"
#include "support/cli.hpp"
#include "support/timer.hpp"

using namespace amtfmm;

int main(int argc, char** argv) {
  Cli cli("screened_coulomb: Yukawa potentials of ions on a spherical surface");
  cli.add_flag("n", static_cast<std::int64_t>(15000), "number of ions");
  cli.parse(argc, argv);
  const auto n = static_cast<std::size_t>(cli.i64("n"));

  Rng rng(3);
  const auto ions = generate_points(Distribution::kSphere, n, rng);
  // Alternating charges, as in a salt layer.
  std::vector<double> q(n);
  for (std::size_t i = 0; i < n; ++i) q[i] = (i % 2 == 0) ? 1.0 : -1.0;

  std::printf("%zu alternating ions on a sphere; Debye screening sweep\n\n", n);
  std::printf("%10s %12s %14s %16s %18s\n", "lambda", "time [s]",
              "sample error", "mean |phi|", "X length (leaf)");

  for (double lambda : {0.5, 2.0, 8.0, 32.0}) {
    EvalConfig cfg;
    cfg.method = Method::kFmmAdvanced;
    cfg.threshold = 40;
    cfg.localities = 1;
    cfg.cores_per_locality = 2;
    Evaluator eval(make_kernel("yukawa", lambda), cfg);
    Timer t;
    const EvalResult r = eval.evaluate(ions, q, ions);
    const double secs = t.seconds();

    const std::size_t sample = std::min<std::size_t>(200, n);
    std::vector<Vec3> probe(ions.begin(),
                            ions.begin() + static_cast<long>(sample));
    const auto exact = direct_sum(eval.kernel(), ions, q, probe);
    double num = 0, den = 0, mean = 0;
    for (std::size_t i = 0; i < sample; ++i) {
      num += (r.potentials[i] - exact[i]) * (r.potentials[i] - exact[i]);
      den += exact[i] * exact[i];
    }
    for (std::size_t i = 0; i < n; ++i) mean += std::abs(r.potentials[i]);
    mean /= static_cast<double>(n);
    // Leaf-level intermediate-expansion length for this screening.
    const auto& yk = eval.kernel();
    const std::size_t xlen = yk.x_count(6);
    std::printf("%10.1f %12.3f %14.2e %16.4f %18zu\n", lambda, secs,
                std::sqrt(num / den), mean, xlen);
  }
  std::printf("\nStronger screening kills the far field: potentials shrink "
              "toward the nearest-neighbour term and the plane-wave\n"
              "expansions shorten level by level (empty once "
              "lambda * box_size exceeds the accuracy budget).\n");
  return 0;
}
